// Package patch is the PatchAPI analog (paper Sections 2.2 and 3.1.2): it
// performs CFG-safe snippet insertion by relocating instrumented functions
// into a patch area (the trampoline space), rewriting their PC-relative
// instructions and jump tables, and redirecting the original entry with the
// cheapest jump that reaches the trampoline:
//
//	c.j        2 bytes, ±2 KiB     (needs the C extension)
//	jal x0     4 bytes, ±1 MiB
//	auipc+jalr 8 bytes, ±2 GiB     (needs a dead scratch register)
//	ebreak     2-4 bytes, trap     (the paper's last resort; only usable
//	                                under dynamic instrumentation, where
//	                                the process-control layer fields the
//	                                trap and redirects the PC)
package patch

import (
	"fmt"

	"rvdyn/internal/riscv"
)

// PatchKind identifies which rung of the jump ladder a patch used.
type PatchKind int

const (
	PatchCJ PatchKind = iota
	PatchJAL
	PatchAuipcJalr
	PatchTrap
)

func (k PatchKind) String() string {
	switch k {
	case PatchCJ:
		return "c.j"
	case PatchJAL:
		return "jal"
	case PatchAuipcJalr:
		return "auipc+jalr"
	case PatchTrap:
		return "trap"
	}
	return "?"
}

// Size returns the patch size in bytes.
func (k PatchKind) Size() int {
	switch k {
	case PatchCJ:
		return 2
	case PatchJAL:
		return 4
	case PatchAuipcJalr:
		return 8
	case PatchTrap:
		return 2
	}
	return 0
}

// JumpPatch selects and encodes the cheapest control-flow redirection from
// `from` to `to` that fits in `room` bytes, per Section 3.1.2.
//
// scratch is a register proven dead at the patch site (RegNone if none is
// available); it enables the auipc+jalr rung. allowTrap permits the ebreak
// fallback (dynamic instrumentation only — a statically rewritten binary
// has no one to catch the trap).
func JumpPatch(from, to uint64, room uint64, arch riscv.ExtSet,
	scratch riscv.Reg, allowTrap bool) (PatchKind, []byte, error) {

	offset := int64(to) - int64(from)

	if arch.Has(riscv.ExtC) && room >= 2 && offset >= riscv.CJMin && offset <= riscv.CJMax {
		h, ok := riscv.Compress(riscv.Inst{
			Mn: riscv.MnJAL, Rd: riscv.X0,
			Rs1: riscv.RegNone, Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: offset,
		})
		if ok {
			return PatchCJ, []byte{byte(h), byte(h >> 8)}, nil
		}
	}
	if room >= 4 && offset >= riscv.JALMin && offset <= riscv.JALMax && offset&1 == 0 {
		w, err := riscv.Encode(riscv.Inst{
			Mn: riscv.MnJAL, Rd: riscv.X0,
			Rs1: riscv.RegNone, Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: offset,
		})
		if err == nil {
			return PatchJAL, []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}, nil
		}
	}
	if room >= 8 && scratch != riscv.RegNone && scratch != riscv.X0 &&
		auipcJalrReaches(offset) {
		hi := (offset + 0x800) >> 12
		lo := offset - hi<<12
		auipc, err1 := riscv.Encode(riscv.Inst{
			Mn: riscv.MnAUIPC, Rd: scratch,
			Rs1: riscv.RegNone, Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: hi,
		})
		jalr, err2 := riscv.Encode(riscv.Inst{
			Mn: riscv.MnJALR, Rd: riscv.X0, Rs1: scratch,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: lo,
		})
		if err1 == nil && err2 == nil {
			return PatchAuipcJalr, []byte{
				byte(auipc), byte(auipc >> 8), byte(auipc >> 16), byte(auipc >> 24),
				byte(jalr), byte(jalr >> 8), byte(jalr >> 16), byte(jalr >> 24),
			}, nil
		}
	}
	if allowTrap && room >= 2 {
		// Reached when no direct rung fits: offset beyond ±2 GiB, an odd
		// offset, or no room/scratch. The failure must be loud (trap or
		// error) — an auipc+jalr with a truncated or rounded immediate would
		// jump somewhere, silently, which corrupts the rewritten binary.
		if arch.Has(riscv.ExtC) {
			return PatchTrap, []byte{0x02, 0x90}, nil // c.ebreak
		}
		if room >= 4 {
			w := riscv.MustEncode(riscv.Inst{Mn: riscv.MnEBREAK})
			return PatchTrap, []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}, nil
		}
	}
	return 0, nil, fmt.Errorf(
		"patch: no jump from %#x to %#x fits in %d bytes (offset %d, scratch %v, trap %v)",
		from, to, room, offset, scratch, allowTrap)
}

// auipcJalrReaches reports whether the auipc+jalr pair can hit offset
// exactly. The pair computes pc + sext(hi<<12) + sext(lo) with hi a signed
// 20-bit U-type immediate (after rounding lo into [-2048, 2047]), so the
// reach is about ±2 GiB — an offset whose rounded hi overflows 20 bits
// would be silently truncated into a wrong-target jump. jalr additionally
// clears bit 0 of the target, so an odd offset would land one byte short.
func auipcJalrReaches(offset int64) bool {
	hi := (offset + 0x800) >> 12
	return offset&1 == 0 && hi >= -(1<<19) && hi < 1<<19
}
