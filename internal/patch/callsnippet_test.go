package patch

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/snippet"
)

// TestCallFuncSnippetRewrite exercises the "calling functions" snippet kind
// from the paper's AST list end-to-end: instrumentation at fib's entry
// calls a logger function *inside the mutatee*, which tallies into a
// global. The call must preserve the mutatee's state exactly (fib still
// computes 144) while the logger observes every entry.
func TestCallFuncSnippetRewrite(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a0, 10
	call fib
	li a7, 93
	ecall

	.globl fib
	.type fib, @function
fib:
	li t0, 2
	blt a0, t0, fib_base
	addi sp, sp, -32
	sd ra, 24(sp)
	sd s0, 16(sp)
	sd s1, 8(sp)
	mv s0, a0
	addi a0, s0, -1
	call fib
	mv s1, a0
	addi a0, s0, -2
	call fib
	add a0, a0, s1
	ld ra, 24(sp)
	ld s0, 16(sp)
	ld s1, 8(sp)
	addi sp, sp, 32
fib_base:
	ret
	.size fib, .-fib

# logger(a0=code): tally[code & 15]++
	.globl logger
	.type logger, @function
logger:
	andi a0, a0, 15
	slli a0, a0, 3
	la t0, tally
	add t0, t0, a0
	ld t1, 0(t0)
	addi t1, t1, 1
	sd t1, 0(t0)
	ret
	.size logger, .-logger

	.data
	.globl tally
tally:
	.zero 128
`
	st, cfg := analyze(t, src, asm.Options{})
	fib, ok := cfg.FuncByName("fib")
	if !ok {
		t.Fatal("fib not found")
	}
	logger, ok := cfg.FuncByName("logger")
	if !ok {
		t.Fatal("logger not found")
	}

	for _, mode := range []codegen.Mode{codegen.ModeDeadRegister, codegen.ModeSpillAlways} {
		rw := NewRewriter(st, cfg, mode)
		// Call logger(arg0) at every fib entry: records the argument
		// distribution of the recursion.
		sn := snippet.CallFunc{Entry: logger.Entry, Args: []snippet.Snippet{snippet.ParamReg{Index: 0}}}
		if err := rw.InsertSnippet(snippet.FuncEntry(fib), sn); err != nil {
			t.Fatal(err)
		}
		out, err := rw.Rewrite()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		c := runFile(t, out, 10_000_000)
		if c.ExitCode != 55 {
			t.Errorf("mode %v: fib(10) = %d, want 55", mode, c.ExitCode)
		}
		sym, _ := out.Symbol("tally")
		// fib(n) entry counts follow the fibonacci recursion themselves:
		// calls(n)=1, with calls(k) = fib-like. Verify a few directly:
		// argument 10 seen once, argument 8 seen twice (from 10->9->8 and
		// 10->8), argument 1 seen fib(10) distribution... check the total
		// equals the known 177 calls of a naive fib(10).
		var total uint64
		counts := make([]uint64, 16)
		for i := 0; i < 16; i++ {
			v, err := c.Mem.Read64(sym.Value + uint64(i*8))
			if err != nil {
				t.Fatal(err)
			}
			counts[i] = v
			total += v
		}
		if total != 177 {
			t.Errorf("mode %v: logger saw %d calls, want 177 (counts %v)", mode, total, counts)
		}
		if counts[10] != 1 || counts[8] != 2 || counts[7] != 3 {
			t.Errorf("mode %v: argument distribution off: %v", mode, counts)
		}
	}
}
