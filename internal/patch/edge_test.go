package patch

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/parse"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// edgeProg has one conditional branch whose taken/not-taken traversal
// counts are known exactly: the loop runs 10 iterations; the bnez is taken
// 9 times and falls through once.
const edgeProg = `
	.text
	.globl _start
_start:
	li a0, 10
	call countdown
	li a7, 93
	ecall

	.globl countdown
	.type countdown, @function
countdown:
	li t0, 0
cd_loop:
	add t0, t0, a0
	addi a0, a0, -1
	bnez a0, cd_loop
	mv a0, t0
	ret
	.size countdown, .-countdown
`

func TestEdgeInstrumentationTakenNotTaken(t *testing.T) {
	for _, mode := range []codegen.Mode{codegen.ModeDeadRegister, codegen.ModeSpillAlways} {
		st, cfg := analyze(t, edgeProg, asm.Options{})
		fn, ok := cfg.FuncByName("countdown")
		if !ok {
			t.Fatal("countdown not found")
		}
		// Find the branch block.
		var branchBlk *parse.Block
		for _, b := range fn.Blocks {
			if len(b.Insts) > 0 && b.Last().IsBranch() {
				branchBlk = b
			}
		}
		if branchBlk == nil {
			t.Fatal("no branch block")
		}
		rw := NewRewriter(st, cfg, mode)
		taken := rw.NewVar("taken", 8)
		notTaken := rw.NewVar("not_taken", 8)
		if err := rw.InsertEdgeSnippet(snippet.TakenEdge(fn, branchBlk), snippet.Increment(taken)); err != nil {
			t.Fatal(err)
		}
		if err := rw.InsertEdgeSnippet(snippet.NotTakenEdge(fn, branchBlk), snippet.Increment(notTaken)); err != nil {
			t.Fatal(err)
		}
		out, err := rw.Rewrite()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		c := runFile(t, out, 1_000_000)
		if c.ExitCode != 55 {
			t.Errorf("mode %v: countdown(10) = %d, want 55", mode, c.ExitCode)
		}
		tv := readVar(t, c, taken)
		nv := readVar(t, c, notTaken)
		if tv != 9 || nv != 1 {
			t.Errorf("mode %v: taken=%d not-taken=%d, want 9/1", mode, tv, nv)
		}
	}
}

func TestLoopBackEdgeInstrumentation(t *testing.T) {
	const n = 6
	st, cfg := analyze(t, workload.MatmulSource(n, 1), asm.Options{})
	fn, _ := cfg.FuncByName("multiply")
	pts := snippet.LoopBackEdges(fn)
	if len(pts) != 3 {
		t.Fatalf("%d back-edge points, want 3", len(pts))
	}
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	backs := rw.NewVar("back_edges", 8)
	for _, pt := range pts {
		if err := rw.InsertEdgeSnippet(pt, snippet.Increment(backs)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 10_000_000)
	// Back-edge traversals: i loop n, j loop n*n, k loop n*n*n.
	want := uint64(n + n*n + n*n*n)
	if got := readVar(t, c, backs); got != want {
		t.Errorf("back-edge count = %d, want %d", got, want)
	}
}

func TestEdgeAndBlockInstrumentationCompose(t *testing.T) {
	// Block-entry and taken-edge instrumentation on the same function must
	// both count correctly: the taken edge enters the target block through
	// its attached block snippet after the stub.
	st, cfg := analyze(t, edgeProg, asm.Options{})
	fn, _ := cfg.FuncByName("countdown")
	var branchBlk *parse.Block
	for _, b := range fn.Blocks {
		if len(b.Insts) > 0 && b.Last().IsBranch() {
			branchBlk = b
		}
	}
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	blocks := rw.NewVar("blocks", 8)
	taken := rw.NewVar("taken", 8)
	for _, pt := range snippet.BlockEntries(fn) {
		if err := rw.InsertSnippet(pt, snippet.Increment(blocks)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.InsertEdgeSnippet(snippet.TakenEdge(fn, branchBlk), snippet.Increment(taken)); err != nil {
		t.Fatal(err)
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 1_000_000)
	if c.ExitCode != 55 {
		t.Fatalf("exit = %d", c.ExitCode)
	}
	// Blocks: entry(1) + loop body(10) + exit(1) = 12.
	if got := readVar(t, c, blocks); got != 12 {
		t.Errorf("block count = %d, want 12", got)
	}
	if got := readVar(t, c, taken); got != 9 {
		t.Errorf("taken count = %d, want 9", got)
	}
}

func TestEdgeInsertionValidation(t *testing.T) {
	st, cfg := analyze(t, edgeProg, asm.Options{})
	fn, _ := cfg.FuncByName("countdown")
	entry := fn.EntryBlock()
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	v := rw.NewVar("v", 8)
	// The entry block ends without a conditional branch: taken-edge
	// insertion on it must be rejected at rewrite time.
	if err := rw.InsertEdgeSnippet(snippet.TakenEdge(fn, entry), snippet.Increment(v)); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Rewrite(); err == nil {
		t.Error("taken-edge insertion on a non-branch block was accepted")
	}
}
