package patch

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/obs"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// TestRewriterObsCounters checks the observability wiring of the rewriter:
// one patch.kind.<kind> count per installed entry patch (matching the
// PatchRecord kinds exactly), relocation size counters consistent with the
// emitted code, and one span per pipeline phase when a tracer is attached.
func TestRewriterObsCounters(t *testing.T) {
	st, cfg := analyze(t, workload.RandomProgram(21, 12), asm.Options{})
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	rw.Obs = reg
	rw.Trace = tr
	rw.TraceTID = 7

	instrumented := 0
	for _, fn := range cfg.Funcs {
		if fn.Name == "" || fn.Name == "_start" {
			continue
		}
		v := rw.NewVar("ctr_"+fn.Name, 8)
		if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(v)); err != nil {
			t.Fatal(err)
		}
		instrumented++
		if instrumented == 6 {
			break
		}
	}
	if instrumented == 0 {
		t.Fatal("random program produced no instrumentable functions")
	}
	if _, err := rw.Rewrite(); err != nil {
		t.Fatal(err)
	}

	// Kind counters must agree with the PatchRecords one-for-one.
	want := map[string]uint64{}
	for _, p := range rw.Patches {
		want["patch.kind."+p.Kind.String()]++
	}
	var kindTotal uint64
	for name, n := range want {
		if got := reg.Counter(name).Load(); got != n {
			t.Errorf("%s = %d, want %d", name, got, n)
		}
		kindTotal += n
	}
	if kindTotal != uint64(len(rw.Patches)) {
		t.Errorf("kind counts sum to %d, %d patches installed", kindTotal, len(rw.Patches))
	}

	// Relocated code always grows (snippets plus expanded branches), so
	// code_bytes > orig_bytes and growth picks up the difference.
	orig := reg.Counter("patch.reloc.orig_bytes").Load()
	code := reg.Counter("patch.reloc.code_bytes").Load()
	growth := reg.Counter("patch.reloc.growth_bytes").Load()
	if orig == 0 || code == 0 {
		t.Fatalf("size counters not recorded: orig=%d code=%d", orig, code)
	}
	if code <= orig {
		t.Errorf("relocated code (%d bytes) not larger than originals (%d bytes)", code, orig)
	}
	if growth != code-orig {
		t.Errorf("growth_bytes = %d, want %d (all functions grew)", growth, code-orig)
	}

	// One span per phase, on the requested tid, consistent with PhaseTimes.
	phases := map[string]bool{}
	for _, ev := range tr.Events() {
		if ev.Cat != "patch" {
			continue
		}
		if ev.TID != 7 {
			t.Errorf("span %s on tid %d, want 7", ev.Name, ev.TID)
		}
		phases[ev.Name] = true
	}
	for _, name := range []string{"patch.plan", "patch.layout", "patch.encode", "patch.splice"} {
		if !phases[name] {
			t.Errorf("no span recorded for %s", name)
		}
	}
	if rw.Phases.Plan <= 0 || rw.Phases.Splice <= 0 {
		t.Errorf("PhaseTimes not populated via timers: %+v", rw.Phases)
	}
}

// TestRewriterObsDisabled: the nil sinks must not change behaviour — the
// output image is byte-identical with and without collection attached.
func TestRewriterObsDisabled(t *testing.T) {
	build := func(withObs bool) []byte {
		st, cfg := analyze(t, workload.RandomProgram(22, 8), asm.Options{})
		rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
		if withObs {
			rw.Obs = obs.NewRegistry()
			rw.Trace = obs.NewTracer()
		}
		for _, fn := range cfg.Funcs {
			if fn.Name == "" || fn.Name == "_start" {
				continue
			}
			v := rw.NewVar("ctr_"+fn.Name, 8)
			if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(v)); err != nil {
				t.Fatal(err)
			}
		}
		out, err := rw.Rewrite()
		if err != nil {
			t.Fatal(err)
		}
		raw, err := out.Write()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	plain, metered := build(false), build(true)
	if string(plain) != string(metered) {
		t.Error("attaching obs changed the output image")
	}
}
