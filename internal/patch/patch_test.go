package patch

import (
	"math"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

func analyze(t *testing.T, src string, aopts asm.Options) (*symtab.Symtab, *parse.CFG) {
	t.Helper()
	f, err := asm.Assemble(src, aopts)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	st, err := symtab.FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := parse.Parse(st, parse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return st, cfg
}

func runFile(t *testing.T, f *elfrv.File, maxInst uint64) *emu.CPU {
	t.Helper()
	c, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(maxInst); r != emu.StopExit {
		t.Fatalf("stopped: %v (%v) pc=%#x", r, c.LastTrap(), c.PC)
	}
	return c
}

func readVar(t *testing.T, c *emu.CPU, v *snippet.Var) uint64 {
	t.Helper()
	val, err := c.Mem.Read64(v.Addr)
	if err != nil {
		t.Fatalf("reading %s: %v", v.Name, err)
	}
	return val
}

func TestJumpPatchSelection(t *testing.T) {
	gc := riscv.RV64GC
	noC := riscv.ExtI | riscv.ExtM
	cases := []struct {
		name     string
		from, to uint64
		room     uint64
		arch     riscv.ExtSet
		scratch  riscv.Reg
		trap     bool
		want     PatchKind
		wantErr  bool
	}{
		{"short forward, C", 0x10000, 0x10400, 4, gc, riscv.RegNone, false, PatchCJ, false},
		{"short backward, C", 0x10000, 0x0fc00, 4, gc, riscv.RegNone, false, PatchCJ, false},
		{"short, no C", 0x10000, 0x10400, 4, noC, riscv.RegNone, false, PatchJAL, false},
		{"medium", 0x10000, 0x80000, 4, gc, riscv.RegNone, false, PatchJAL, false},
		{"far with scratch", 0x10000, 0x10000000, 8, gc, riscv.RegT0, false, PatchAuipcJalr, false},
		{"far without scratch", 0x10000, 0x10000000, 8, gc, riscv.RegNone, false, 0, true},
		{"far, room 4, trap ok", 0x10000, 0x10000000, 4, gc, riscv.RegNone, true, PatchTrap, false},
		{"tiny room, close", 0x10000, 0x10200, 2, gc, riscv.RegNone, false, PatchCJ, false},
		{"tiny room, far, trap", 0x10000, 0x90000, 2, gc, riscv.RegNone, true, PatchTrap, false},
		{"tiny room, far, no trap", 0x10000, 0x90000, 2, gc, riscv.RegNone, false, 0, true},
		{"tiny room, no C", 0x10000, 0x10200, 2, noC, riscv.RegNone, true, 0, true},
	}
	for _, c := range cases {
		kind, bytes, err := JumpPatch(c.from, c.to, c.room, c.arch, c.scratch, c.trap)
		if c.wantErr {
			if err == nil {
				t.Errorf("%s: got %v, want error", c.name, kind)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if kind != c.want {
			t.Errorf("%s: kind = %v, want %v", c.name, kind, c.want)
		}
		if len(bytes) != kind.Size() {
			t.Errorf("%s: %d bytes for %v", c.name, len(bytes), kind)
		}
		if uint64(len(bytes)) > c.room {
			t.Errorf("%s: patch exceeds room", c.name)
		}
		// Decode the patch and verify it lands on the target.
		if kind == PatchCJ || kind == PatchJAL {
			inst, err := riscv.Decode(bytes, c.from)
			if err != nil {
				t.Errorf("%s: patch does not decode: %v", c.name, err)
				continue
			}
			if tgt, ok := inst.Target(); !ok || tgt != c.to {
				t.Errorf("%s: patch jumps to %#x, want %#x", c.name, tgt, c.to)
			}
		}
		if kind == PatchAuipcJalr {
			auipc, _ := riscv.Decode(bytes, c.from)
			jalr, _ := riscv.Decode(bytes[4:], c.from+4)
			got := uint64(int64(c.from) + auipc.Imm<<12 + jalr.Imm)
			if got != c.to {
				t.Errorf("%s: pair jumps to %#x, want %#x", c.name, got, c.to)
			}
		}
	}
}

// TestFunctionEntryCounting is the paper's experiment 1 in miniature:
// instrument the entry of multiply, run, and check the counter equals the
// call count while the computation stays correct.
func TestFunctionEntryCounting(t *testing.T) {
	const n, reps = 12, 5
	for _, mode := range []codegen.Mode{codegen.ModeDeadRegister, codegen.ModeSpillAlways} {
		src := workload.MatmulSource(n, reps)
		st, cfg := analyze(t, src, asm.Options{})
		fn, ok := cfg.FuncByName("multiply")
		if !ok {
			t.Fatal("multiply not found")
		}
		rw := NewRewriter(st, cfg, mode)
		counter := rw.NewVar("entry_count", 8)
		if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(counter)); err != nil {
			t.Fatal(err)
		}
		out, err := rw.Rewrite()
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		c := runFile(t, out, 200_000_000)
		if got := readVar(t, c, counter); got != reps {
			t.Errorf("mode %v: entry count = %d, want %d", mode, got, reps)
		}
		// The instrumented binary must still compute the right product.
		sym, _ := out.Symbol("mat_c")
		want := workload.RefMatmul(n)
		raw, _ := c.Mem.Read64(sym.Value + uint64((n*n-1)*8))
		if float64frombits(raw) != want[n*n-1] {
			t.Errorf("mode %v: instrumented run corrupted the result", mode)
		}
	}
}

func float64frombits(u uint64) float64 {
	return math.Float64frombits(u)
}

// TestBasicBlockCounting is the paper's experiment 2 in miniature: one
// counter incremented at every block of multiply. The expected executed
// block count is computed analytically from the loop structure.
func TestBasicBlockCounting(t *testing.T) {
	const n, reps = 8, 2
	src := workload.MatmulSource(n, reps)
	st, cfg := analyze(t, src, asm.Options{})
	fn, _ := cfg.FuncByName("multiply")
	if fn == nil {
		t.Fatal("multiply not found")
	}
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	counter := rw.NewVar("bb_count", 8)
	points := snippet.BlockEntries(fn)
	if len(points) != 11 {
		t.Fatalf("%d block points, want 11", len(points))
	}
	for _, pt := range points {
		if err := rw.InsertSnippet(pt, snippet.Increment(counter)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 200_000_000)

	// Blocks per call: B1,B2 once; mm_i n+1; B4 n; mm_j n(n+1); B6 n*n;
	// mm_k n*n*(n+1); body n^3; k_done n*n; i_inc n; done 1.
	perCall := uint64(2 + (n + 1) + n + n*(n+1) + n*n + n*n*(n+1) + n*n*n + n*n + n + 1)
	want := perCall * reps
	if got := readVar(t, c, counter); got != want {
		t.Errorf("bb count = %d, want %d", got, want)
	}
}

// TestMatmulTwoMillionBlockExecutions checks the paper's setup claim:
// "During one execution of the multiply function, about 2 million basic
// blocks are executed" at n=100.
func TestMatmulTwoMillionBlockExecutions(t *testing.T) {
	n := 100
	perCall := 2 + (n + 1) + n + n*(n+1) + n*n + n*n*(n+1) + n*n*n + n*n + n + 1
	if perCall < 1_900_000 || perCall > 2_200_000 {
		t.Errorf("analytic block executions per call = %d, want ~2M", perCall)
	}
}

func TestOverheadOrdering(t *testing.T) {
	// Virtual-time ordering: base < entry-instrumented < bb-instrumented,
	// and dead-register bb < spill-always bb (the table's key shape).
	const n, reps = 10, 2
	src := workload.MatmulSource(n, reps)

	base := func() uint64 {
		f, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c := runFile(t, f, 0)
		return c.Cycles
	}()

	run := func(mode codegen.Mode, perBlock bool) uint64 {
		st, cfg := analyze(t, src, asm.Options{})
		fn, _ := cfg.FuncByName("multiply")
		rw := NewRewriter(st, cfg, mode)
		counter := rw.NewVar("c", 8)
		if perBlock {
			for _, pt := range snippet.BlockEntries(fn) {
				if err := rw.InsertSnippet(pt, snippet.Increment(counter)); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(counter)); err != nil {
				t.Fatal(err)
			}
		}
		out, err := rw.Rewrite()
		if err != nil {
			t.Fatal(err)
		}
		return runFile(t, out, 0).Cycles
	}

	entryDead := run(codegen.ModeDeadRegister, false)
	bbDead := run(codegen.ModeDeadRegister, true)
	bbSpill := run(codegen.ModeSpillAlways, true)

	if entryDead <= base {
		t.Errorf("entry instrumentation not slower than base: %d vs %d", entryDead, base)
	}
	if bbDead <= entryDead {
		t.Errorf("bb instrumentation not slower than entry: %d vs %d", bbDead, entryDead)
	}
	if bbSpill <= bbDead {
		t.Errorf("spill-always (%d) not slower than dead-register (%d): the paper's optimization should win", bbSpill, bbDead)
	}
	t.Logf("cycles: base=%d entry=%d bb(dead)=%d bb(spill)=%d", base, entryDead, bbDead, bbSpill)
}

func TestJumpTableFunctionInstrumentation(t *testing.T) {
	// Instrument every block of the jump-table dispatcher: the rewriter
	// must repoint the table slots at the relocated cases.
	st, cfg := analyze(t, workload.JumpTableSource, asm.Options{})
	fn, ok := cfg.FuncByName("dispatch")
	if !ok {
		t.Fatal("dispatch not found")
	}
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	counter := rw.NewVar("blocks", 8)
	for _, pt := range snippet.BlockEntries(fn) {
		if err := rw.InsertSnippet(pt, snippet.Increment(counter)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 1_000_000)
	if c.ExitCode != workload.JumpTableExpected {
		t.Errorf("instrumented dispatch exit = %d, want %d", c.ExitCode, workload.JumpTableExpected)
	}
	if got := readVar(t, c, counter); got == 0 {
		t.Error("block counter never incremented")
	}
}

func TestFunctionExitInstrumentation(t *testing.T) {
	st, cfg := analyze(t, workload.FibSource, asm.Options{})
	fn, _ := cfg.FuncByName("fib")
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	entries := rw.NewVar("entries", 8)
	exits := rw.NewVar("exits", 8)
	if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(entries)); err != nil {
		t.Fatal(err)
	}
	for _, pt := range snippet.FuncExits(fn) {
		if err := rw.InsertSnippet(pt, snippet.Increment(exits)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 10_000_000)
	if c.ExitCode != workload.FibExpected {
		t.Errorf("instrumented fib exit = %d, want %d", c.ExitCode, workload.FibExpected)
	}
	e, x := readVar(t, c, entries), readVar(t, c, exits)
	if e == 0 || e != x {
		t.Errorf("entries %d != exits %d (recursive calls must balance)", e, x)
	}
}

func TestTailCallExitInstrumentation(t *testing.T) {
	// f_outer exits via a tail call; exit instrumentation must catch it.
	st, cfg := analyze(t, workload.TailCallSource, asm.Options{})
	fn, _ := cfg.FuncByName("f_outer")
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	exits := rw.NewVar("exits", 8)
	pts := snippet.FuncExits(fn)
	if len(pts) != 1 {
		t.Fatalf("%d exit points in f_outer, want 1 (the tail call)", len(pts))
	}
	for _, pt := range pts {
		if err := rw.InsertSnippet(pt, snippet.Increment(exits)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 1_000_000)
	if c.ExitCode != workload.TailCallExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, workload.TailCallExpected)
	}
	if got := readVar(t, c, exits); got != 1 {
		t.Errorf("tail-call exit count = %d, want 1", got)
	}
}

func TestLoopInstrumentation(t *testing.T) {
	const n, reps = 6, 1
	st, cfg := analyze(t, workload.MatmulSource(n, reps), asm.Options{})
	fn, _ := cfg.FuncByName("multiply")
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	iters := rw.NewVar("iters", 8)
	pts := snippet.LoopBegins(fn)
	if len(pts) != 3 {
		t.Fatalf("%d loop points, want 3", len(pts))
	}
	for _, pt := range pts {
		if err := rw.InsertSnippet(pt, snippet.Increment(iters)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 100_000_000)
	// Head executions: i loop n+1, j loop n(n+1), k loop n*n*(n+1).
	want := uint64((n + 1) + n*(n+1) + n*n*(n+1))
	if got := readVar(t, c, iters); got != want {
		t.Errorf("loop-head count = %d, want %d", got, want)
	}
}

func TestEntryPatchKindsRecorded(t *testing.T) {
	st, cfg := analyze(t, workload.MatmulSource(8, 1), asm.Options{})
	fn, _ := cfg.FuncByName("multiply")
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	v := rw.NewVar("v", 8)
	if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(v)); err != nil {
		t.Fatal(err)
	}
	if _, err := rw.Rewrite(); err != nil {
		t.Fatal(err)
	}
	if len(rw.Patches) != 1 {
		t.Fatalf("%d patch records", len(rw.Patches))
	}
	p := rw.Patches[0]
	// Trampolines are pages away: c.j cannot reach, jal can.
	if p.Kind != PatchJAL {
		t.Errorf("entry patch kind = %v, want jal", p.Kind)
	}
}

func TestRewriteRoundTripsThroughELF(t *testing.T) {
	// The rewritten binary must survive a write/read cycle and still run.
	const n = 6
	st, cfg := analyze(t, workload.MatmulSource(n, 1), asm.Options{})
	fn, _ := cfg.FuncByName("multiply")
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	counter := rw.NewVar("c", 8)
	if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(counter)); err != nil {
		t.Fatal(err)
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := out.Write()
	if err != nil {
		t.Fatal(err)
	}
	back, err := elfrv.Read(raw)
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, back, 100_000_000)
	if got := readVar(t, c, counter); got != 1 {
		t.Errorf("counter after ELF round trip = %d", got)
	}
	// The instrumented copy must be findable by symbol.
	if _, ok := back.Symbol("multiply.dyninst"); !ok {
		t.Error("relocated function symbol missing")
	}
}

func TestCompressedFunctionRelocation(t *testing.T) {
	// Instrument a function full of compressed instructions; relocation
	// must preserve semantics (widening only what needs widening).
	src := `
	.text
	.globl _start
_start:
	li a0, 10
	call accumulate
	li a7, 93
	ecall
	.globl accumulate
	.type accumulate, @function
accumulate:
	addi sp, sp, -16
	sd s0, 8(sp)
	li s0, 0
acc_loop:
	add s0, s0, a0
	addi a0, a0, -1
	bnez a0, acc_loop
	mv a0, s0
	ld s0, 8(sp)
	addi sp, sp, 16
	ret
	.size accumulate, .-accumulate
`
	st, cfg := analyze(t, src, asm.Options{})
	fn, _ := cfg.FuncByName("accumulate")
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	blocks := rw.NewVar("blocks", 8)
	for _, pt := range snippet.BlockEntries(fn) {
		if err := rw.InsertSnippet(pt, snippet.Increment(blocks)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 1_000_000)
	if c.ExitCode != 55 {
		t.Errorf("instrumented accumulate = %d, want 55", c.ExitCode)
	}
	// entry block + 10 loop iterations + exit block
	if got := readVar(t, c, blocks); got != 1+10+1 {
		t.Errorf("block executions = %d, want 12", got)
	}
}

func TestUninstrumentedFunctionsUntouched(t *testing.T) {
	st, cfg := analyze(t, workload.MatmulSource(6, 1), asm.Options{})
	fn, _ := cfg.FuncByName("multiply")
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	v := rw.NewVar("v", 8)
	if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(v)); err != nil {
		t.Fatal(err)
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	// init_matrices' bytes must be identical in old and new .text.
	initFn, _ := cfg.FuncByName("init_matrices")
	lo, hi := initFn.Extent()
	oldText := st.File.Section(".text")
	newText := out.Section(".text")
	for a := lo; a < hi; a++ {
		if oldText.Data[a-oldText.Addr] != newText.Data[a-newText.Addr] {
			t.Fatalf("byte at %#x changed in uninstrumented function", a)
		}
	}
}
