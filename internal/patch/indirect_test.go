package patch

import (
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/snippet"
)

// TestResolvedIndirectJumpStaysRelocated: a function with a resolved
// computed jump (la + jr) is instrumented; the relocated copy must rewrite
// the jr into a direct jump so execution never escapes back into the
// original, uninstrumented body — the counters prove where execution went.
func TestResolvedIndirectJumpStaysRelocated(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a0, 5
	call f
	li a7, 93
	ecall

	.globl f
	.type f, @function
f:
	la t0, f_target
	jr t0
	addi a0, a0, 100    # skipped by the jump
f_target:
	addi a0, a0, 1
	ret
	.size f, .-f
`
	st, cfg := analyze(t, src, asm.Options{NoCompress: true})
	fn, ok := cfg.FuncByName("f")
	if !ok {
		t.Fatal("f not found")
	}
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	counter := rw.NewVar("blocks", 8)
	for _, pt := range snippet.BlockEntries(fn) {
		if err := rw.InsertSnippet(pt, snippet.Increment(counter)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 100_000)
	if c.ExitCode != 6 {
		t.Errorf("exit = %d, want 6", c.ExitCode)
	}
	// Blocks executed in f: entry (la+jr) and f_target (addi+ret). If the
	// jr had escaped to the original body, the target-block counter bump
	// would be missing.
	if got := readVar(t, c, counter); got != 2 {
		t.Errorf("block executions = %d, want 2 (jump target must stay in the relocated copy)", got)
	}
	// The relocated copy must not contain a jalr jump anymore (the return's
	// jalr through ra remains).
	sec := out.Section(".dyninst.text")
	if sec == nil {
		t.Fatal("no trampoline section")
	}
}

// TestUnresolvedIndirectJumpRefused: a function whose indirect jump cannot
// be resolved must be refused by the rewriter rather than silently
// mis-relocated.
func TestUnresolvedIndirectJumpRefused(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	li a0, 0
	ecall

	.globl g
	.type g, @function
g:
	# a1 comes from the caller: not resolvable statically, not a table.
	jr a1
	.size g, .-g
`
	st, cfg := analyze(t, src, asm.Options{})
	fn, ok := cfg.FuncByName("g")
	if !ok {
		t.Fatal("g not found")
	}
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	v := rw.NewVar("v", 8)
	if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(v)); err != nil {
		t.Fatal(err)
	}
	_, err := rw.Rewrite()
	if err == nil {
		t.Fatal("rewriter accepted a function with an unresolvable indirect jump")
	}
	if !strings.Contains(err.Error(), "refusing to relocate") {
		t.Errorf("error = %v", err)
	}
}
