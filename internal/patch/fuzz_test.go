package patch

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/emu"
	"rvdyn/internal/parse"
	"rvdyn/internal/snippet"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

// Differential fuzzing of the whole instrumentation pipeline: generate a
// random (but always-terminating) program, run it raw, then instrument
// every basic block of every function in both register-allocation modes and
// both compression variants, and require bit-identical program results.
// This exercises the decoder, the parser's block construction and
// classification, liveness, snippet lowering, relocation fix-ups, and the
// entry-patch ladder together, on shapes no hand-written test anticipates.

func TestDifferentialInstrumentationFuzz(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		src := workload.RandomProgram(int64(seed), 2+seed%3)
		for _, aopts := range []asm.Options{{}, {NoCompress: true}} {
			file, err := asm.Assemble(src, aopts)
			if err != nil {
				t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
			}
			// Base run.
			base, err := emu.New(file, emu.P550())
			if err != nil {
				t.Fatal(err)
			}
			if r := base.Run(5_000_000); r != emu.StopExit {
				t.Fatalf("seed %d: base stopped %v (%v)", seed, r, base.LastTrap())
			}

			st, err := symtab.FromFile(file)
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := parse.Parse(st, parse.Options{})
			if err != nil {
				t.Fatalf("seed %d: parse: %v", seed, err)
			}

			for _, mode := range []codegen.Mode{codegen.ModeDeadRegister, codegen.ModeSpillAlways} {
				rw := NewRewriter(st, cfg, mode)
				counter := rw.NewVar("fuzz_blocks", 8)
				points := 0
				for _, fn := range cfg.Funcs {
					for _, pt := range snippet.BlockEntries(fn) {
						if err := rw.InsertSnippet(pt, snippet.Increment(counter)); err != nil {
							t.Fatalf("seed %d: insert: %v", seed, err)
						}
						points++
					}
				}
				out, err := rw.Rewrite()
				if err != nil {
					t.Fatalf("seed %d mode %v: rewrite: %v\n%s", seed, mode, err, src)
				}
				inst, err := emu.New(out, emu.P550())
				if err != nil {
					t.Fatal(err)
				}
				if r := inst.Run(20_000_000); r != emu.StopExit {
					t.Fatalf("seed %d mode %v compress=%v: instrumented stopped %v (%v) pc=%#x\n%s",
						seed, mode, !aopts.NoCompress, r, inst.LastTrap(), inst.PC, src)
				}
				if inst.ExitCode != base.ExitCode {
					t.Fatalf("seed %d mode %v: exit %d != base %d\n%s",
						seed, mode, inst.ExitCode, base.ExitCode, src)
				}
				blocks, err := inst.Mem.Read64(counter.Addr)
				if err != nil || blocks == 0 {
					t.Fatalf("seed %d mode %v: block counter = %d (err %v)", seed, mode, blocks, err)
				}
				if inst.Instret <= base.Instret {
					t.Fatalf("seed %d mode %v: instrumented retired %d <= base %d",
						seed, mode, inst.Instret, base.Instret)
				}
			}
		}
	}
}
