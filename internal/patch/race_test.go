package patch

import (
	"bytes"
	"sync"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// TestRewriterLivenessCacheRace pins the data race the parallel planning
// phase introduced in the rewriter's lazily-built liveness cache: before the
// cache was mutex-guarded with double-checked locking, concurrent planFunc
// workers could write rw.liveness for the same function simultaneously.
// The test hammers livenessFor directly from many goroutines (run under
// -race; the CI race job does) and asserts all callers observe one canonical
// result per function.
func TestRewriterLivenessCacheRace(t *testing.T) {
	st, cfg := analyze(t, workload.RandomProgram(11, 24), asm.Options{})
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)

	const goroutines = 16
	results := make([]map[uint64]interface{}, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := map[uint64]interface{}{}
			// Interleave orders so goroutines collide on cold entries.
			for round := 0; round < 4; round++ {
				for i := range cfg.Funcs {
					fn := cfg.Funcs[(i+g)%len(cfg.Funcs)]
					seen[fn.Entry] = rw.livenessFor(fn)
				}
			}
			results[g] = seen
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for entry, lv := range results[g] {
			if lv != results[0][entry] {
				t.Errorf("goroutine %d observed a different liveness result for %#x", g, entry)
			}
		}
	}
}

// TestParallelRewriteMatchesSerial exercises the full four-phase pipeline
// (parallel plan, serial layout, parallel encode, serial splice) under the
// race detector and pins the byte-identity of serial and parallel output at
// the Rewriter level — below the pipeline package's batch machinery.
func TestParallelRewriteMatchesSerial(t *testing.T) {
	build := func(jobs int) []byte {
		st, cfg := analyze(t, workload.RandomProgram(12, 18), asm.Options{})
		rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
		rw.Jobs = jobs
		for i, fn := range cfg.Funcs {
			if i%2 == 1 {
				continue
			}
			v := rw.NewVar("c_"+fn.Name, 8)
			if err := rw.InsertSnippet(snippet.FuncEntry(fn), snippet.Increment(v)); err != nil {
				t.Fatalf("jobs=%d: %v", jobs, err)
			}
		}
		out, err := rw.Rewrite()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		raw, err := out.Write()
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if rw.Phases.Plan+rw.Phases.Layout+rw.Phases.Encode+rw.Phases.Splice == 0 {
			t.Errorf("jobs=%d: phase times were not recorded", jobs)
		}
		return raw
	}
	serial := build(1)
	for _, jobs := range []int{2, 4, 16} {
		if got := build(jobs); !bytes.Equal(got, serial) {
			t.Errorf("jobs=%d: output differs from serial (%d vs %d bytes)", jobs, len(got), len(serial))
		}
	}
}
