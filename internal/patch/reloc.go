package patch

import (
	"fmt"
	"sort"

	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
	"rvdyn/internal/symtab"
)

// Function relocation: the instrumented version of a function is laid out
// in the patch area with snippet code spliced in front of instrumented
// instructions, every PC-relative instruction fixed up for its new address,
// and intra-function control flow retargeted to the relocated copies — the
// "safe transformations of the program's CFG" of Bernat & Miller that the
// paper's PatchAPI builds on.

// Insertion asks for code to run immediately before the original
// instruction at Addr.
type Insertion struct {
	Addr uint64
	Code []riscv.Inst
}

// EdgeInsertion asks for code to run when a specific CFG edge is traversed
// (the paper's "branch-taken and branch-not-taken edges, loop back edges"
// point kinds). Taken and direct edges get an out-of-line stub the branch
// is retargeted through; not-taken edges get code inlined on the
// fallthrough path, which other predecessors of the successor block bypass.
type EdgeInsertion struct {
	Block *parse.Block
	Kind  parse.EdgeKind // EdgeTaken, EdgeNotTaken, or EdgeDirect
	Code  []riscv.Inst
}

// Relocation is the result of relocating one function.
type Relocation struct {
	Func    *parse.Function
	NewBase uint64
	Code    []byte
	// AddrMap maps each original instruction address to its relocated
	// address — through any snippet code inserted in front of it, so
	// redirected control flow executes the instrumentation.
	AddrMap map[uint64]uint64
	// InstrumentationBytes counts the bytes of inserted snippet code.
	InstrumentationBytes int
}

type itemKind uint8

const (
	itemOrig itemKind = iota
	itemSnippet
)

type rItem struct {
	kind     itemKind
	inst     riscv.Inst
	origAddr uint64 // for itemOrig
	// intraTarget is the original address of an intra-function control-flow
	// target needing remapping; externTarget is an absolute target outside
	// the relocated set (calls, tail calls).
	intraTarget  uint64
	externTarget uint64
	hasIntra     bool
	hasExtern    bool
	size         uint64
	// attach marks snippet items that belong to the next original
	// instruction: control flow targeting that instruction must enter
	// through them. Edge-specific code does not attach.
	attach bool
	// stubID, when non-zero, redirects this item's control-flow target to
	// the identified edge stub instead of intraTarget.
	stubID int
}

// Relocate produces the instrumented copy of fn at newBase.
func Relocate(fn *parse.Function, st *symtab.Symtab, insertions []Insertion,
	newBase uint64, arch riscv.ExtSet) (*Relocation, error) {
	return RelocateWithEdges(fn, st, insertions, nil, newBase, arch)
}

// RelocateWithEdges additionally splices edge instrumentation.
func RelocateWithEdges(fn *parse.Function, st *symtab.Symtab, insertions []Insertion,
	edges []EdgeInsertion, newBase uint64, arch riscv.ExtSet) (*Relocation, error) {
	plan, err := PlanRelocation(fn, st, insertions, edges, arch)
	if err != nil {
		return nil, err
	}
	return plan.Encode(newBase)
}

// RelocPlan is the base-independent half of a function relocation: the item
// sequence with fixed sizes, built before the function's patch-area address
// is known. Item sizes never depend on the eventual base, so plans for many
// functions can be built concurrently and their bases assigned afterwards by
// a serial prefix sum — the key to a parallel rewrite pipeline whose output
// is byte-identical to the serial one.
type RelocPlan struct {
	Func *parse.Function
	// Size is the total byte size the encoded relocation will occupy.
	Size uint64
	// InstrumentationBytes counts the bytes of inserted snippet code.
	InstrumentationBytes int

	items        []*rItem
	stubStartIdx map[int]int // stub id -> index of first stub item
}

// PlanRelocation validates the request and builds the relocation item
// sequence for fn without assigning addresses.
func PlanRelocation(fn *parse.Function, st *symtab.Symtab, insertions []Insertion,
	edges []EdgeInsertion, arch riscv.ExtSet) (*RelocPlan, error) {

	insByAddr := map[uint64][][]riscv.Inst{}
	for _, ins := range insertions {
		insByAddr[ins.Addr] = append(insByAddr[ins.Addr], ins.Code)
	}

	// Validate insertion addresses.
	for _, ins := range insertions {
		if _, ok := fn.BlockContaining(ins.Addr); !ok {
			return nil, fmt.Errorf("patch: insertion at %#x is outside function %s", ins.Addr, fn.Name)
		}
	}

	blocks := append([]*parse.Block(nil), fn.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Start < blocks[j].Start })

	intraStarts := map[uint64]bool{}
	for _, b := range blocks {
		intraStarts[b.Start] = true
	}

	// Group edge requests by block.
	type edgeReq struct {
		taken, notTaken, direct [][]riscv.Inst
	}
	edgeByBlock := map[*parse.Block]*edgeReq{}
	for _, e := range edges {
		if e.Block == nil || e.Block.Func != fn {
			return nil, fmt.Errorf("patch: edge insertion block is not in function %s", fn.Name)
		}
		r := edgeByBlock[e.Block]
		if r == nil {
			r = &edgeReq{}
			edgeByBlock[e.Block] = r
		}
		term := e.Block.Last()
		switch e.Kind {
		case parse.EdgeTaken:
			if term.Cat() != riscv.CatBranch {
				return nil, fmt.Errorf("patch: taken-edge insertion on non-branch block %v", e.Block)
			}
			r.taken = append(r.taken, e.Code)
		case parse.EdgeNotTaken:
			if term.Cat() != riscv.CatBranch {
				return nil, fmt.Errorf("patch: not-taken-edge insertion on non-branch block %v", e.Block)
			}
			r.notTaken = append(r.notTaken, e.Code)
		case parse.EdgeDirect:
			if !term.IsJAL() || term.Rd != riscv.X0 {
				return nil, fmt.Errorf("patch: direct-edge insertion on block %v without a plain jump", e.Block)
			}
			r.direct = append(r.direct, e.Code)
		default:
			return nil, fmt.Errorf("patch: unsupported edge kind %v", e.Kind)
		}
	}

	// Safety: a block whose indirect jump could not be resolved may target
	// any address in the original body; relocating around it would silently
	// split execution between the two copies. Refuse, as Dyninst refuses
	// unsafe transformations.
	for _, b := range blocks {
		if b.Purpose == parse.PurposeUnresolved {
			return nil, fmt.Errorf("patch: function %s has an unresolvable indirect jump at %#x; refusing to relocate",
				fn.Name, b.Last().Addr)
		}
	}

	var items []*rItem
	type stub struct {
		id     int
		code   [][]riscv.Inst
		target uint64 // original address the stub jumps on to
	}
	var stubs []*stub
	instBytes := 0
	for _, b := range blocks {
		req := edgeByBlock[b]
		for ii, inst := range b.Insts {
			for _, code := range insByAddr[inst.Addr] {
				for _, sin := range code {
					items = append(items, &rItem{kind: itemSnippet, inst: sin, size: 4, attach: true})
					instBytes += 4
				}
			}
			isTerm := ii == len(b.Insts)-1
			// A jalr the classifier proved to be an intra-function jump
			// (rule 1) computes its target from registers that hold
			// *original* addresses; left untouched it would escape back
			// into the uninstrumented body. The resolution supplies its
			// unique target, so rewrite it into a direct jump.
			if isTerm && inst.IsJALR() && b.Purpose == parse.PurposeJump {
				target, ok := soleIndirectTarget(b)
				if !ok {
					return nil, fmt.Errorf("patch: resolved jalr jump at %#x has no unique target", inst.Addr)
				}
				jmp := riscv.Inst{Mn: riscv.MnJAL, Rd: riscv.X0,
					Rs1: riscv.RegNone, Rs2: riscv.RegNone, Rs3: riscv.RegNone}
				items = append(items, &rItem{kind: itemOrig, inst: jmp, origAddr: inst.Addr,
					size: 4, hasIntra: true, intraTarget: target})
				continue
			}
			its, err := relocInst(fn, inst, intraStarts)
			if err != nil {
				return nil, err
			}
			if isTerm && req != nil {
				// Out-of-line stubs for taken/direct edges: retarget the
				// terminator through the stub.
				var stubCode [][]riscv.Inst
				if inst.Cat() == riscv.CatBranch {
					stubCode = req.taken
				} else {
					stubCode = req.direct
				}
				if len(stubCode) > 0 {
					target := inst.Addr + uint64(inst.Imm)
					st := &stub{id: len(stubs) + 1, code: stubCode, target: target}
					stubs = append(stubs, st)
					its[len(its)-1].stubID = st.id
					for _, c := range stubCode {
						instBytes += 4 * len(c)
					}
					instBytes += 4 // the stub's trailing jump
				}
			}
			items = append(items, its...)
			if isTerm && req != nil && len(req.notTaken) > 0 {
				// Inline code on the fallthrough path only: other
				// predecessors of the successor block enter past it.
				for _, code := range req.notTaken {
					for _, sin := range code {
						items = append(items, &rItem{kind: itemSnippet, inst: sin, size: 4})
						instBytes += 4
					}
				}
			}
		}
	}
	// Append the edge stubs after the function body.
	stubStartIdx := map[int]int{} // stub id -> index of first stub item
	for _, st := range stubs {
		stubStartIdx[st.id] = len(items)
		for _, code := range st.code {
			for _, sin := range code {
				items = append(items, &rItem{kind: itemSnippet, inst: sin, size: 4})
			}
		}
		jmp := riscv.Inst{Mn: riscv.MnJAL, Rd: riscv.X0,
			Rs1: riscv.RegNone, Rs2: riscv.RegNone, Rs3: riscv.RegNone}
		items = append(items, &rItem{kind: itemSnippet, inst: jmp, size: 4,
			hasIntra: true, intraTarget: st.target})
	}

	plan := &RelocPlan{
		Func: fn, InstrumentationBytes: instBytes,
		items: items, stubStartIdx: stubStartIdx,
	}
	for _, it := range items {
		plan.Size += it.size
	}
	return plan, nil
}

// Encode lays the plan out at newBase and produces the encoded relocation.
// Layout is a single pass: sizes are fixed (control flow with intra targets
// was widened to 4-byte forms; auipc became a materialization sequence), so
// the output depends only on the plan and the base, never on when or on
// which goroutine the plan was built. Encode never mutates the plan —
// addresses live in a local table — so one cached plan may be encoded by
// any number of goroutines concurrently (the server replays cached plans).
func (p *RelocPlan) Encode(newBase uint64) (*Relocation, error) {
	fn, items, stubStartIdx := p.Func, p.items, p.stubStartIdx

	addr := newBase
	addrMap := map[uint64]uint64{}
	addrs := make([]uint64, len(items))
	for i, it := range items {
		addrs[i] = addr
		addr += it.size
	}
	// Map each original address to the start of its preceding *attached*
	// snippet run (edge-specific code never captures incoming control flow).
	var pendingStart uint64
	pendingValid := false
	for i, it := range items {
		switch {
		case it.kind == itemSnippet && it.attach:
			if !pendingValid {
				pendingStart = addrs[i]
				pendingValid = true
			}
		case it.kind == itemSnippet:
			pendingValid = false
		case it.kind == itemOrig:
			target := addrs[i]
			if pendingValid {
				target = pendingStart
				pendingValid = false
			}
			if _, dup := addrMap[it.origAddr]; !dup {
				addrMap[it.origAddr] = target
			}
		}
	}
	// Resolve stub entry addresses for retargeted terminators.
	stubAddr := map[int]uint64{}
	for id, idx := range stubStartIdx {
		stubAddr[id] = addrs[idx]
	}

	// Encode with resolved targets.
	var code []byte
	for i, it := range items {
		inst := it.inst
		switch {
		case it.stubID != 0:
			inst.Imm = int64(stubAddr[it.stubID]) - int64(addrs[i])
		case it.hasIntra:
			nt, ok := addrMap[it.intraTarget]
			if !ok {
				return nil, fmt.Errorf("patch: intra target %#x of %v not in relocation", it.intraTarget, inst)
			}
			inst.Imm = int64(nt) - int64(addrs[i])
		case it.hasExtern:
			inst.Imm = int64(it.externTarget) - int64(addrs[i])
		}
		var b []byte
		var err error
		if it.kind == itemOrig && inst.Compressed && !it.hasIntra && !it.hasExtern {
			b, err = riscv.EncodeBytes(inst) // keeps the compressed form
		} else {
			inst.Compressed = false
			w, e := riscv.Encode(inst)
			if e != nil {
				err = e
			} else {
				b = []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("patch: encoding relocated %v at %#x: %w", inst, addrs[i], err)
		}
		if uint64(len(b)) != it.size {
			return nil, fmt.Errorf("patch: relocated %v sized %d, encoded %d", inst, it.size, len(b))
		}
		code = append(code, b...)
	}

	return &Relocation{
		Func: fn, NewBase: newBase, Code: code, AddrMap: addrMap,
		InstrumentationBytes: p.InstrumentationBytes,
	}, nil
}

// soleIndirectTarget returns the unique intra-function target of a
// resolved indirect-jump block.
func soleIndirectTarget(b *parse.Block) (uint64, bool) {
	var target uint64
	found := false
	for _, e := range b.Out {
		if e.Kind == parse.EdgeIndirect {
			if found && e.Target != target {
				return 0, false
			}
			target, found = e.Target, true
		}
	}
	return target, found
}

// relocInst converts one original instruction into relocation items.
func relocInst(fn *parse.Function, inst riscv.Inst, intraStarts map[uint64]bool) ([]*rItem, error) {
	switch inst.Cat() {
	case riscv.CatBranch:
		target := inst.Addr + uint64(inst.Imm)
		it := &rItem{kind: itemOrig, inst: inst, origAddr: inst.Addr, size: 4}
		it.inst.Compressed = false // may need a wider offset than c.beqz
		if intraStarts[target] {
			it.hasIntra, it.intraTarget = true, target
		} else {
			// A conditional branch out of the function (pathological but
			// possible): keep the absolute target.
			it.hasExtern, it.externTarget = true, target
		}
		return []*rItem{it}, nil

	case riscv.CatJAL:
		target := inst.Addr + uint64(inst.Imm)
		it := &rItem{kind: itemOrig, inst: inst, origAddr: inst.Addr, size: 4}
		it.inst.Compressed = false
		if inst.Rd == riscv.X0 && intraStarts[target] {
			it.hasIntra, it.intraTarget = true, target
		} else {
			it.hasExtern, it.externTarget = true, target
		}
		return []*rItem{it}, nil

	case riscv.CatJALR:
		// Target comes from a register; the value was fixed up where it was
		// produced (auipc rewriting below, or the patched jump table).
		return []*rItem{{kind: itemOrig, inst: inst, origAddr: inst.Addr, size: inst.Size()}}, nil
	}

	if inst.Mn == riscv.MnAUIPC {
		// auipc computes pc-relative values; relocation changes pc, so
		// rewrite it into an absolute materialization of the original value
		// (rd ends up with exactly the same bits, so any paired lo12
		// consumer — jalr, addi, loads — still works unchanged).
		value := int64(inst.Addr) + inst.Imm<<12
		seq := materializeAbs(inst.Rd, value)
		items := make([]*rItem, len(seq))
		for i, s := range seq {
			it := &rItem{kind: itemOrig, inst: s, size: 4}
			if i == 0 {
				it.origAddr = inst.Addr
			}
			items[i] = it
		}
		return items, nil
	}

	return []*rItem{{kind: itemOrig, inst: inst, origAddr: inst.Addr, size: inst.Size()}}, nil
}

// MaterializeAbs builds a fixed-width (4-byte instructions) li sequence that
// leaves rd holding exactly v. The static rewriter uses it to flatten auipc
// into position-independent form; the DBI engine reuses it for the same
// purpose when copying blocks into the code cache (and for jal link values).
func MaterializeAbs(rd riscv.Reg, v int64) []riscv.Inst { return materializeAbs(rd, v) }

// materializeAbs builds a fixed-width (4-byte instructions) li sequence.
func materializeAbs(rd riscv.Reg, v int64) []riscv.Inst {
	mk := func(mn riscv.Mnemonic, rd, rs1 riscv.Reg, imm int64) riscv.Inst {
		return riscv.Inst{Mn: mn, Rd: rd, Rs1: rs1, Rs2: riscv.RegNone, Rs3: riscv.RegNone, Imm: imm}
	}
	if v >= -2048 && v <= 2047 {
		return []riscv.Inst{mk(riscv.MnADDI, rd, riscv.X0, v)}
	}
	if v >= -(1<<31) && v < 1<<31 {
		hi := (v + 0x800) >> 12
		lo := v - hi<<12
		hi = hi << 44 >> 44
		out := []riscv.Inst{mk(riscv.MnLUI, rd, riscv.RegNone, hi)}
		if lo != 0 {
			out = append(out, mk(riscv.MnADDIW, rd, rd, lo))
		}
		return out
	}
	lo12 := v << 52 >> 52
	out := materializeAbs(rd, (v-lo12)>>12)
	out = append(out, mk(riscv.MnSLLI, rd, rd, 12))
	if lo12 != 0 {
		out = append(out, mk(riscv.MnADDI, rd, rd, lo12))
	}
	return out
}
