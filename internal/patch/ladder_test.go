package patch

import (
	"testing"

	"rvdyn/internal/riscv"
)

// auipcJalrTarget decodes an 8-byte auipc+jalr patch placed at `from` and
// returns the address it actually jumps to, reproducing the hardware's
// arithmetic: from + sext(hi<<12) + sext(lo), with jalr's bit-0 clear.
func auipcJalrTarget(t *testing.T, from uint64, b []byte) uint64 {
	t.Helper()
	if len(b) != 8 {
		t.Fatalf("auipc+jalr patch is %d bytes, want 8", len(b))
	}
	auipc, err := riscv.Decode(b[:4], from)
	if err != nil || auipc.Mn != riscv.MnAUIPC {
		t.Fatalf("first patch word: %v (err %v), want auipc", auipc.Mn, err)
	}
	jalr, err := riscv.Decode(b[4:], from+4)
	if err != nil || jalr.Mn != riscv.MnJALR {
		t.Fatalf("second patch word: %v (err %v), want jalr", jalr.Mn, err)
	}
	return (from + uint64(auipc.Imm<<12) + uint64(jalr.Imm)) &^ 1
}

// TestAuipcJalrExactTarget: every offset the auipc+jalr rung accepts must
// land exactly on the requested target, including at the ±2 GiB edges.
func TestAuipcJalrExactTarget(t *testing.T) {
	const from = uint64(0x10_0000_0000)
	offsets := []int64{
		1 << 22, -(1 << 22), // comfortably in range (beyond jal's ±1 MiB)
		1<<31 - 2050,      // largest even reachable forward offset
		-(1 << 31) - 2048, // smallest reachable backward offset
	}
	for _, off := range offsets {
		to := uint64(int64(from) + off)
		kind, b, err := JumpPatch(from, to, 8, riscv.RV64GC, riscv.RegT0, false)
		if err != nil {
			t.Errorf("offset %d: %v", off, err)
			continue
		}
		if kind != PatchAuipcJalr {
			t.Errorf("offset %d: kind = %v, want auipc+jalr", off, kind)
			continue
		}
		if got := auipcJalrTarget(t, from, b); got != to {
			t.Errorf("offset %d: patch jumps to %#x, want %#x (off by %d)",
				off, got, to, int64(got)-int64(to))
		}
	}
}

// TestAuipcJalrRangeCheck: offsets the rung cannot encode must fall through
// to the trap rung or an error — never a silently wrong-target patch. Before
// the range check, the hi immediate was truncated with <<44>>44 and a
// beyond-±2 GiB offset produced a valid-looking jump to the wrong address.
func TestAuipcJalrRangeCheck(t *testing.T) {
	const from = uint64(0x10_0000_0000)
	cases := []struct {
		name string
		off  int64
	}{
		{"one past max", 1<<31 - 2048},
		{"one past min", -(1 << 31) - 2050},
		{"far beyond", 1 << 40},
		{"far behind", -(1 << 40)},
		{"odd offset", 1<<22 + 1}, // jalr clears bit 0: would land 1 byte short
	}
	for _, c := range cases {
		to := uint64(int64(from) + c.off)

		// Without the trap rung the ladder must fail loudly.
		kind, b, err := JumpPatch(from, to, 8, riscv.RV64GC, riscv.RegT0, false)
		if err == nil {
			got := uint64(0)
			if kind == PatchAuipcJalr {
				got = auipcJalrTarget(t, from, b)
			}
			t.Errorf("%s (offset %d): got %v to %#x, want error (target %#x)",
				c.name, c.off, kind, got, to)
		}

		// With the trap rung allowed it must select the trap, not a jump.
		kind, _, err = JumpPatch(from, to, 8, riscv.RV64GC, riscv.RegT0, true)
		if err != nil {
			t.Errorf("%s (offset %d): trap fallback errored: %v", c.name, c.off, err)
		} else if kind != PatchTrap {
			t.Errorf("%s (offset %d): kind = %v, want trap", c.name, c.off, kind)
		}
	}
}
