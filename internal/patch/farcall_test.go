package patch

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
	"rvdyn/internal/workload"
)

// TestInstrumentFunctionWithFarCalls relocates a function containing the
// auipc+jalr multi-instruction call sequence (paper Section 3.2.3): the
// relocator must rewrite the pc-relative auipc into an absolute
// materialization so the paired jalr still reaches the callee from the new
// location.
func TestInstrumentFunctionWithFarCalls(t *testing.T) {
	st, cfg := analyze(t, workload.FarCallSource, asm.Options{})
	fn, ok := cfg.FuncByName("_start")
	if !ok {
		t.Fatal("_start not found")
	}
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	blocks := rw.NewVar("blocks", 8)
	for _, pt := range snippet.BlockEntries(fn) {
		if err := rw.InsertSnippet(pt, snippet.Increment(blocks)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 1_000_000)
	if c.ExitCode != workload.FarCallExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, workload.FarCallExpected)
	}
	if got := readVar(t, c, blocks); got == 0 {
		t.Error("block counter never ran")
	}
	// The relocated copy must not contain an auipc anymore (each was
	// rewritten to lui/addiw materialization of the same value).
	sec := out.Section(".dyninst.text")
	if sec == nil {
		t.Fatal("no trampoline")
	}
	for off := 0; off < len(sec.Data); {
		in, err := riscv.Decode(sec.Data[off:], sec.Addr+uint64(off))
		if err != nil {
			t.Fatalf("relocated code undecodable at +%#x: %v", off, err)
		}
		if in.Mn == riscv.MnAUIPC {
			t.Errorf("auipc survived relocation at %#x", in.Addr)
		}
		off += in.Len
	}
}

// TestInstrumentBothEndsOfFarCall instruments caller and callee together in
// one rewrite: the relocated caller's jalr must land on the callee's
// *patched* original entry, which bounces to the callee's relocated copy.
func TestInstrumentBothEndsOfFarCall(t *testing.T) {
	st, cfg := analyze(t, workload.FarCallSource, asm.Options{})
	caller, _ := cfg.FuncByName("_start")
	callee, _ := cfg.FuncByName("square")
	if caller == nil || callee == nil {
		t.Fatal("functions missing")
	}
	rw := NewRewriter(st, cfg, codegen.ModeDeadRegister)
	callerV := rw.NewVar("caller_blocks", 8)
	calleeV := rw.NewVar("callee_entries", 8)
	for _, pt := range snippet.BlockEntries(caller) {
		if err := rw.InsertSnippet(pt, snippet.Increment(callerV)); err != nil {
			t.Fatal(err)
		}
	}
	if err := rw.InsertSnippet(snippet.FuncEntry(callee), snippet.Increment(calleeV)); err != nil {
		t.Fatal(err)
	}
	out, err := rw.Rewrite()
	if err != nil {
		t.Fatal(err)
	}
	c := runFile(t, out, 1_000_000)
	if c.ExitCode != workload.FarCallExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, workload.FarCallExpected)
	}
	if got := readVar(t, c, calleeV); got != 2 {
		t.Errorf("callee entries = %d, want 2 (both far calls must reach the instrumented square)", got)
	}
	if len(rw.Patches) != 2 {
		t.Errorf("%d entry patches, want 2", len(rw.Patches))
	}
}
