package patch

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rvdyn/internal/codegen"
	"rvdyn/internal/dataflow"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/obs"
	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
	"rvdyn/internal/symtab"
)

// Rewriter performs static binary rewriting (Figure 1, left path): open a
// binary, attach snippets to points, and produce a new executable whose
// instrumented functions run relocated, instrumented copies from the patch
// area.
//
// Rewrite runs as a four-phase pipeline: snippet generation, liveness, and
// relocation planning fan out across Jobs workers (every per-function plan
// is independent); patch-area layout is a serial prefix sum in ascending
// entry order; encoding fans out again; and the final splice into the output
// image is serial. Because layout depends only on the sorted entry order and
// the base-independent plan sizes, the output ELF is byte-identical for
// every worker count.
type Rewriter struct {
	st  *symtab.Symtab
	cfg *parse.CFG

	mode codegen.Mode
	arch riscv.ExtSet

	// Jobs bounds the parallel plan and encode phases (<= 0: GOMAXPROCS,
	// 1: fully serial).
	Jobs int

	vars    []*snippet.Var
	varBase uint64
	varNext uint64

	// requests, grouped by function entry.
	requests     map[uint64][]request
	edgeRequests map[uint64][]edgeRequest

	// liveness memoizes per-function dataflow results for the parallel
	// planning workers. By default every Rewriter gets a private cache;
	// SetLivenessCache shares one across Rewriters of the same binary (the
	// server's warm path).
	liveness *LivenessCache

	// Results, for inspection by tests and the EXPERIMENTS harness.
	Patches []PatchRecord
	// Phases records wall-clock time spent in each Rewrite phase.
	Phases PhaseTimes

	// Obs, when non-nil, receives patch counters: one patch.kind.<kind> count
	// per entry patch installed (which rung of the jump ladder fit) and
	// relocation size counters (patch.reloc.orig_bytes / code_bytes /
	// growth_bytes). Nil disables collection.
	Obs *obs.Registry
	// Trace, when non-nil, records each Rewrite phase as a span on TraceTID.
	Trace    *obs.Tracer
	TraceTID int
}

// PhaseTimes reports where one Rewrite spent its time.
type PhaseTimes struct {
	Plan   time.Duration // parallel: codegen + liveness + relocation planning
	Layout time.Duration // serial: patch-area base assignment
	Encode time.Duration // parallel: instruction encoding at assigned bases
	Splice time.Duration // serial: entry patches, table repointing, assembly
}

type request struct {
	point snippet.Point
	sn    snippet.Snippet
}

type edgeRequest struct {
	point snippet.EdgePoint
	sn    snippet.Snippet
}

// PatchRecord describes one entry patch the rewriter installed.
type PatchRecord struct {
	Func     string
	Kind     PatchKind
	From, To uint64
}

// NewRewriter wraps an analyzed binary. The mode selects the register
// allocation strategy for generated snippets (the paper's optimization is
// codegen.ModeDeadRegister).
func NewRewriter(st *symtab.Symtab, cfg *parse.CFG, mode codegen.Mode) *Rewriter {
	// Variables live in a fresh data section placed far above the existing
	// image; the address is fixed now so snippet code can be generated
	// eagerly.
	end := imageEnd(st)
	varBase := (end + 0xfff) &^ 0xfff
	varBase += 0x200000
	return &Rewriter{
		st: st, cfg: cfg, mode: mode,
		arch:         st.Extensions,
		varBase:      varBase,
		varNext:      varBase,
		requests:     map[uint64][]request{},
		edgeRequests: map[uint64][]edgeRequest{},
		liveness:     NewLivenessCache(),
	}
}

// LivenessCache memoizes per-function liveness results, keyed by function
// entry address. One cache may be shared by any number of Rewriters over the
// *same* analyzed binary (entries are keyed by address, so sharing across
// different binaries would collide); LivenessResult values are immutable
// once computed, and the double-checked locking keeps concurrent fills
// canonical (see TestRewriterLivenessCacheRace).
type LivenessCache struct {
	mu sync.Mutex
	m  map[uint64]*dataflow.LivenessResult
}

// NewLivenessCache returns an empty cache.
func NewLivenessCache() *LivenessCache {
	return &LivenessCache{m: map[uint64]*dataflow.LivenessResult{}}
}

// For returns the cached liveness of fn, computing it on first use.
func (c *LivenessCache) For(fn *parse.Function) *dataflow.LivenessResult {
	c.mu.Lock()
	lv, ok := c.m[fn.Entry]
	c.mu.Unlock()
	if ok {
		return lv
	}
	// Computed outside the lock: liveness is pure, so two workers racing on
	// the same function at worst duplicate work, never corrupt the cache.
	lv = dataflow.Liveness(fn)
	c.mu.Lock()
	if prior, ok := c.m[fn.Entry]; ok {
		lv = prior
	} else {
		c.m[fn.Entry] = lv
	}
	c.mu.Unlock()
	return lv
}

// Len returns the number of memoized functions.
func (c *LivenessCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// SetLivenessCache replaces the rewriter's private liveness cache, letting
// repeated rewrites of the same binary skip the dataflow analysis. Call it
// before the first InsertSnippet/Rewrite; the cache must belong to the same
// binary this rewriter analyzes.
func (rw *Rewriter) SetLivenessCache(c *LivenessCache) {
	if c != nil {
		rw.liveness = c
	}
}

func imageEnd(st *symtab.Symtab) uint64 {
	var end uint64
	for _, r := range st.Regions {
		if r.Addr+r.Size > end {
			end = r.Addr + r.Size
		}
	}
	return end
}

// NewVar allocates an instrumentation variable in the rewritten binary's
// data section.
func (rw *Rewriter) NewVar(name string, width int) *snippet.Var {
	if width != 1 && width != 2 && width != 4 && width != 8 {
		width = 8
	}
	// 8-byte alignment keeps loads simple.
	rw.varNext = (rw.varNext + 7) &^ 7
	v := &snippet.Var{Name: name, Width: width, Addr: rw.varNext}
	rw.varNext += uint64(width)
	rw.vars = append(rw.vars, v)
	return v
}

// InsertSnippet schedules sn to run at the point. Code generation happens
// immediately, with dead registers from liveness at the point when the mode
// allows.
func (rw *Rewriter) InsertSnippet(pt snippet.Point, sn snippet.Snippet) error {
	if pt.Func == nil {
		return fmt.Errorf("patch: point %v has no function", pt)
	}
	rw.requests[pt.Func.Entry] = append(rw.requests[pt.Func.Entry], request{pt, sn})
	return nil
}

// InsertEdgeSnippet schedules sn to run whenever the CFG edge is traversed.
func (rw *Rewriter) InsertEdgeSnippet(pt snippet.EdgePoint, sn snippet.Snippet) error {
	if pt.Func == nil || pt.Block == nil {
		return fmt.Errorf("patch: edge point %v is incomplete", pt)
	}
	rw.edgeRequests[pt.Func.Entry] = append(rw.edgeRequests[pt.Func.Entry], edgeRequest{pt, sn})
	return nil
}

func (rw *Rewriter) livenessFor(fn *parse.Function) *dataflow.LivenessResult {
	return rw.liveness.For(fn)
}

// generate lowers one request to instructions.
func (rw *Rewriter) generate(req request) ([]riscv.Inst, error) {
	var dead []riscv.Reg
	if rw.mode == codegen.ModeDeadRegister {
		dead = rw.livenessFor(req.point.Func).DeadScratchX(req.point.Addr)
	}
	res, err := codegen.Generate(req.sn, codegen.Options{
		Arch: rw.arch, Mode: rw.mode, DeadRegs: dead,
	})
	if err != nil {
		return nil, fmt.Errorf("patch: generating snippet at %v: %w", req.point, err)
	}
	return res.Insts, nil
}

// funcPlan carries one function's instrumentation through the pipeline
// phases: plan (parallel) fills plan/room/scratch, layout (serial) fills
// base, encode (parallel) fills rel.
type funcPlan struct {
	entry   uint64
	fn      *parse.Function
	plan    *RelocPlan
	room    uint64    // bytes available at the entry for the jump patch
	scratch riscv.Reg // dead register for the auipc+jalr rung, or RegNone
	base    uint64
	rel     *Relocation
}

// planFunc runs the per-function half of the pipeline: generate all snippet
// code, pick the entry-patch scratch register, and build the
// base-independent relocation plan.
func (rw *Rewriter) planFunc(entry uint64) (*funcPlan, error) {
	fn, ok := rw.cfg.FuncAt(entry)
	if !ok {
		return nil, fmt.Errorf("patch: no parsed function at %#x", entry)
	}
	var insertions []Insertion
	for _, req := range rw.requests[entry] {
		code, err := rw.generate(req)
		if err != nil {
			return nil, err
		}
		insertions = append(insertions, Insertion{Addr: req.point.Addr, Code: code})
	}
	var edgeIns []EdgeInsertion
	for _, req := range rw.edgeRequests[entry] {
		// Scratch registers for edge code come from the edge's
		// destination: the source terminator has already read its
		// operands when the edge code runs.
		var dead []riscv.Reg
		if rw.mode == codegen.ModeDeadRegister {
			dead = rw.livenessFor(fn).DeadScratchX(req.point.EdgeDest())
		}
		res, err := codegen.Generate(req.sn, codegen.Options{
			Arch: rw.arch, Mode: rw.mode, DeadRegs: dead,
		})
		if err != nil {
			return nil, fmt.Errorf("patch: generating edge snippet at %v: %w", req.point, err)
		}
		edgeIns = append(edgeIns, EdgeInsertion{
			Block: req.point.Block, Kind: req.point.Kind, Code: res.Insts,
		})
	}
	plan, err := PlanRelocation(fn, rw.st, insertions, edgeIns, rw.arch)
	if err != nil {
		return nil, err
	}
	lo, hi := fn.Extent()
	if lo != fn.Entry {
		return nil, fmt.Errorf("patch: function %s extent starts at %#x, not its entry", fn.Name, lo)
	}
	fp := &funcPlan{entry: entry, fn: fn, plan: plan, room: hi - fn.Entry, scratch: riscv.RegNone}
	if dead := rw.livenessFor(fn).DeadScratchX(fn.Entry); len(dead) > 0 {
		fp.scratch = dead[0]
	}
	return fp, nil
}

// workers resolves the effective worker count.
func (rw *Rewriter) workers() int {
	if rw.Jobs > 0 {
		return rw.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// forEach runs f(0..n-1) across the rewriter's worker pool. With one worker
// (or one item) it degenerates to a plain loop on the calling goroutine.
func (rw *Rewriter) forEach(n int, f func(int)) {
	w := rw.workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PlanSet is the reusable phase-1 product of a Rewrite: every requested
// function's generated snippet code, scratch-register choice, and
// base-independent relocation plan. A PlanSet may be cached and replayed
// through RewriteWithPlans by any Rewriter over the same analyzed binary
// with the same requests and variable allocations (the rvdynd server's
// content-addressed cache keys guarantee exactly that). Replay never
// mutates the set, so concurrent replays of one cached PlanSet are safe.
type PlanSet struct {
	plans []*funcPlan
}

// Funcs returns the number of planned functions.
func (ps *PlanSet) Funcs() int { return len(ps.plans) }

// Size returns the total patch-area bytes the plans will occupy — a stable
// lower bound on the memory the set retains, used for cache accounting.
func (ps *PlanSet) Size() uint64 {
	var n uint64
	for _, p := range ps.plans {
		n += p.plan.Size
	}
	return n
}

// Plan runs phase 1 of the rewrite — snippet generation, liveness, and
// relocation planning, fanned out across the worker pool — and returns the
// base-independent result. Rewrite is Plan followed by RewriteWithPlans.
func (rw *Rewriter) Plan() (*PlanSet, error) {
	// Deterministic function order.
	entrySet := map[uint64]bool{}
	for e := range rw.requests {
		entrySet[e] = true
	}
	for e := range rw.edgeRequests {
		entrySet[e] = true
	}
	entries := make([]uint64, 0, len(entrySet))
	for e := range entrySet {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })

	// Snippet generation, liveness, and relocation planning for each
	// function are independent of every other function; only immutable
	// analysis results (symtab, CFG) and the mutex-guarded liveness cache
	// are shared.
	t := obs.StartTimer(rw.Trace, rw.TraceTID, "patch.plan", "patch")
	plans := make([]*funcPlan, len(entries))
	errs := make([]error, len(entries))
	rw.forEach(len(entries), func(i int) {
		plans[i], errs[i] = rw.planFunc(entries[i])
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	rw.Phases.Plan = t.Stop()
	return &PlanSet{plans: plans}, nil
}

// Rewrite produces the instrumented ELF image.
func (rw *Rewriter) Rewrite() (*elfrv.File, error) {
	ps, err := rw.Plan()
	if err != nil {
		return nil, err
	}
	return rw.RewriteWithPlans(ps)
}

// RewriteWithPlans runs phases 2–4 (layout, encode, splice) over an
// already-built PlanSet — the warm path when the plans came from a cache.
// The set must have been planned against the same binary image with the
// same request set and variable allocations as this rewriter; layout and
// encode work on copies, leaving ps untouched.
func (rw *Rewriter) RewriteWithPlans(ps *PlanSet) (*elfrv.File, error) {
	orig := rw.st.File

	// Clone sections so the original file object stays pristine.
	out := &elfrv.File{Entry: orig.Entry, Type: orig.Type, Flags: orig.Flags}
	secData := map[string][]byte{}
	for _, s := range orig.Sections {
		ns := &elfrv.Section{
			Name: s.Name, Type: s.Type, Flags: s.Flags, Addr: s.Addr,
			MemSize: s.MemSize, Align: s.Align,
		}
		if s.Data != nil {
			ns.Data = append([]byte(nil), s.Data...)
			secData[s.Name] = ns.Data
		}
		out.Sections = append(out.Sections, ns)
	}
	out.Symbols = append(out.Symbols, orig.Symbols...)

	trampBase := (imageEnd(rw.st) + 0xfff) &^ 0xfff
	trampBase += 0x1000
	var trampCode []byte

	// Work on shallow copies: layout and encode fill base and rel, and a
	// cached PlanSet must stay immutable for concurrent replays.
	plans := make([]*funcPlan, len(ps.plans))
	for i, p := range ps.plans {
		cp := *p
		cp.base, cp.rel = 0, nil
		plans[i] = &cp
	}
	errs := make([]error, len(plans))

	// Phase 2 — layout (serial). Bases come from a prefix sum over plan
	// sizes in ascending entry order, so the patch-area layout depends only
	// on the request set, never on worker scheduling.
	t := obs.StartTimer(rw.Trace, rw.TraceTID, "patch.layout", "patch")
	next := trampBase
	for _, p := range plans {
		p.base = next
		next += p.plan.Size
	}
	rw.Phases.Layout = t.Stop()

	// Phase 3 — encode (parallel). Every plan now knows its base.
	t = obs.StartTimer(rw.Trace, rw.TraceTID, "patch.encode", "patch")
	rw.forEach(len(plans), func(i int) {
		plans[i].rel, errs[i] = plans[i].plan.Encode(plans[i].base)
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	rw.Phases.Encode = t.Stop()

	// Phase 4 — splice (serial, in entry order): entry patches, jump-table
	// repointing, code concatenation, symbol emission.
	t = obs.StartTimer(rw.Trace, rw.TraceTID, "patch.splice", "patch")
	defer func() { rw.Phases.Splice = t.Stop() }()
	for _, p := range plans {
		fn, rel := p.fn, p.rel

		// Entry patch: redirect the original entry to the relocated copy,
		// choosing the cheapest jump that fits in the function's extent.
		newEntry := rel.AddrMap[fn.Entry]
		kind, bytes, err := JumpPatch(fn.Entry, newEntry, p.room, rw.arch, p.scratch, false)
		if err != nil {
			return nil, fmt.Errorf("patch: function %s: %w", fn.Name, err)
		}
		if err := rw.patchBytes(secData, fn.Entry, bytes); err != nil {
			return nil, err
		}
		rw.Patches = append(rw.Patches, PatchRecord{
			Func: fn.Name, Kind: kind, From: fn.Entry, To: newEntry,
		})
		if rw.Obs != nil {
			rw.Obs.Counter("patch.kind." + kind.String()).Inc()
			rw.Obs.Counter("patch.reloc.orig_bytes").Add(p.room)
			rw.Obs.Counter("patch.reloc.code_bytes").Add(uint64(len(rel.Code)))
			if g := uint64(len(rel.Code)); g > p.room {
				rw.Obs.Counter("patch.reloc.growth_bytes").Add(g - p.room)
			}
		}

		// Repoint jump-table slots at the relocated blocks.
		for _, b := range fn.Blocks {
			if b.Purpose != parse.PurposeJumpTable || b.TableCount == 0 {
				continue
			}
			for i := uint64(0); i < b.TableCount; i++ {
				slot := b.TableBase + i*b.TableStride
				old, ok := rw.st.ReadMem(slot, b.TableWidth)
				if !ok {
					return nil, fmt.Errorf("patch: cannot read jump table slot %#x", slot)
				}
				nt, ok := rel.AddrMap[old&^1]
				if !ok {
					return nil, fmt.Errorf("patch: jump table slot %#x target %#x not relocated", slot, old)
				}
				var buf [8]byte
				for j := 0; j < b.TableWidth; j++ {
					buf[j] = byte(nt >> (8 * j))
				}
				if err := rw.patchBytes(secData, slot, buf[:b.TableWidth]); err != nil {
					return nil, err
				}
			}
		}

		trampCode = append(trampCode, rel.Code...)
		out.Symbols = append(out.Symbols, elfrv.Symbol{
			Name: fn.Name + ".dyninst", Value: rel.NewBase,
			Size: uint64(len(rel.Code)), Bind: elfrv.STBLocal,
			Type: elfrv.STTFunc, Section: ".dyninst.text",
		})
	}

	if len(trampCode) > 0 {
		out.Sections = append(out.Sections, &elfrv.Section{
			Name: ".dyninst.text", Type: elfrv.SHTProgbits,
			Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
			Addr:  trampBase, Data: trampCode, Align: 4,
		})
	}
	if rw.varNext > rw.varBase {
		out.Sections = append(out.Sections, &elfrv.Section{
			Name: ".dyninst.data", Type: elfrv.SHTProgbits,
			Flags: elfrv.SHFAlloc | elfrv.SHFWrite,
			Addr:  rw.varBase, Data: make([]byte, rw.varNext-rw.varBase), Align: 8,
		})
		for _, v := range rw.vars {
			out.Symbols = append(out.Symbols, elfrv.Symbol{
				Name: v.Name, Value: v.Addr, Size: uint64(v.Width),
				Bind: elfrv.STBLocal, Type: elfrv.STTObject, Section: ".dyninst.data",
			})
		}
	}
	return out, nil
}

// patchBytes writes into the cloned section data covering addr.
func (rw *Rewriter) patchBytes(secData map[string][]byte, addr uint64, b []byte) error {
	for _, r := range rw.st.Regions {
		if addr >= r.Addr && addr+uint64(len(b)) <= r.Addr+r.Size {
			data, ok := secData[r.Name]
			if !ok {
				return fmt.Errorf("patch: section %s has no initialized data to patch", r.Name)
			}
			copy(data[addr-r.Addr:], b)
			return nil
		}
	}
	return fmt.Errorf("patch: address %#x not inside any section", addr)
}
