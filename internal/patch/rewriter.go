package patch

import (
	"fmt"
	"sort"

	"rvdyn/internal/codegen"
	"rvdyn/internal/dataflow"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
	"rvdyn/internal/symtab"
)

// Rewriter performs static binary rewriting (Figure 1, left path): open a
// binary, attach snippets to points, and produce a new executable whose
// instrumented functions run relocated, instrumented copies from the patch
// area.
type Rewriter struct {
	st  *symtab.Symtab
	cfg *parse.CFG

	mode codegen.Mode
	arch riscv.ExtSet

	vars    []*snippet.Var
	varBase uint64
	varNext uint64

	// requests, grouped by function entry.
	requests     map[uint64][]request
	edgeRequests map[uint64][]edgeRequest
	liveness     map[uint64]*dataflow.LivenessResult

	// Results, for inspection by tests and the EXPERIMENTS harness.
	Patches []PatchRecord
}

type request struct {
	point snippet.Point
	sn    snippet.Snippet
}

type edgeRequest struct {
	point snippet.EdgePoint
	sn    snippet.Snippet
}

// PatchRecord describes one entry patch the rewriter installed.
type PatchRecord struct {
	Func     string
	Kind     PatchKind
	From, To uint64
}

// NewRewriter wraps an analyzed binary. The mode selects the register
// allocation strategy for generated snippets (the paper's optimization is
// codegen.ModeDeadRegister).
func NewRewriter(st *symtab.Symtab, cfg *parse.CFG, mode codegen.Mode) *Rewriter {
	// Variables live in a fresh data section placed far above the existing
	// image; the address is fixed now so snippet code can be generated
	// eagerly.
	end := imageEnd(st)
	varBase := (end + 0xfff) &^ 0xfff
	varBase += 0x200000
	return &Rewriter{
		st: st, cfg: cfg, mode: mode,
		arch:         st.Extensions,
		varBase:      varBase,
		varNext:      varBase,
		requests:     map[uint64][]request{},
		edgeRequests: map[uint64][]edgeRequest{},
		liveness:     map[uint64]*dataflow.LivenessResult{},
	}
}

func imageEnd(st *symtab.Symtab) uint64 {
	var end uint64
	for _, r := range st.Regions {
		if r.Addr+r.Size > end {
			end = r.Addr + r.Size
		}
	}
	return end
}

// NewVar allocates an instrumentation variable in the rewritten binary's
// data section.
func (rw *Rewriter) NewVar(name string, width int) *snippet.Var {
	if width != 1 && width != 2 && width != 4 && width != 8 {
		width = 8
	}
	// 8-byte alignment keeps loads simple.
	rw.varNext = (rw.varNext + 7) &^ 7
	v := &snippet.Var{Name: name, Width: width, Addr: rw.varNext}
	rw.varNext += uint64(width)
	rw.vars = append(rw.vars, v)
	return v
}

// InsertSnippet schedules sn to run at the point. Code generation happens
// immediately, with dead registers from liveness at the point when the mode
// allows.
func (rw *Rewriter) InsertSnippet(pt snippet.Point, sn snippet.Snippet) error {
	if pt.Func == nil {
		return fmt.Errorf("patch: point %v has no function", pt)
	}
	rw.requests[pt.Func.Entry] = append(rw.requests[pt.Func.Entry], request{pt, sn})
	return nil
}

// InsertEdgeSnippet schedules sn to run whenever the CFG edge is traversed.
func (rw *Rewriter) InsertEdgeSnippet(pt snippet.EdgePoint, sn snippet.Snippet) error {
	if pt.Func == nil || pt.Block == nil {
		return fmt.Errorf("patch: edge point %v is incomplete", pt)
	}
	rw.edgeRequests[pt.Func.Entry] = append(rw.edgeRequests[pt.Func.Entry], edgeRequest{pt, sn})
	return nil
}

func (rw *Rewriter) livenessFor(fn *parse.Function) *dataflow.LivenessResult {
	lv, ok := rw.liveness[fn.Entry]
	if !ok {
		lv = dataflow.Liveness(fn)
		rw.liveness[fn.Entry] = lv
	}
	return lv
}

// generate lowers one request to instructions.
func (rw *Rewriter) generate(req request) ([]riscv.Inst, error) {
	var dead []riscv.Reg
	if rw.mode == codegen.ModeDeadRegister {
		dead = rw.livenessFor(req.point.Func).DeadScratchX(req.point.Addr)
	}
	res, err := codegen.Generate(req.sn, codegen.Options{
		Arch: rw.arch, Mode: rw.mode, DeadRegs: dead,
	})
	if err != nil {
		return nil, fmt.Errorf("patch: generating snippet at %v: %w", req.point, err)
	}
	return res.Insts, nil
}

// Rewrite produces the instrumented ELF image.
func (rw *Rewriter) Rewrite() (*elfrv.File, error) {
	orig := rw.st.File

	// Clone sections so the original file object stays pristine.
	out := &elfrv.File{Entry: orig.Entry, Type: orig.Type, Flags: orig.Flags}
	secData := map[string][]byte{}
	for _, s := range orig.Sections {
		ns := &elfrv.Section{
			Name: s.Name, Type: s.Type, Flags: s.Flags, Addr: s.Addr,
			MemSize: s.MemSize, Align: s.Align,
		}
		if s.Data != nil {
			ns.Data = append([]byte(nil), s.Data...)
			secData[s.Name] = ns.Data
		}
		out.Sections = append(out.Sections, ns)
	}
	out.Symbols = append(out.Symbols, orig.Symbols...)

	trampBase := (imageEnd(rw.st) + 0xfff) &^ 0xfff
	trampBase += 0x1000
	trampNext := trampBase
	var trampCode []byte

	// Deterministic function order.
	entrySet := map[uint64]bool{}
	for e := range rw.requests {
		entrySet[e] = true
	}
	for e := range rw.edgeRequests {
		entrySet[e] = true
	}
	entries := make([]uint64, 0, len(entrySet))
	for e := range entrySet {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i] < entries[j] })

	for _, entry := range entries {
		fn, ok := rw.cfg.FuncAt(entry)
		if !ok {
			return nil, fmt.Errorf("patch: no parsed function at %#x", entry)
		}
		var insertions []Insertion
		for _, req := range rw.requests[entry] {
			code, err := rw.generate(req)
			if err != nil {
				return nil, err
			}
			insertions = append(insertions, Insertion{Addr: req.point.Addr, Code: code})
		}
		var edgeIns []EdgeInsertion
		for _, req := range rw.edgeRequests[entry] {
			// Scratch registers for edge code come from the edge's
			// destination: the source terminator has already read its
			// operands when the edge code runs.
			var dead []riscv.Reg
			if rw.mode == codegen.ModeDeadRegister {
				dead = rw.livenessFor(fn).DeadScratchX(req.point.EdgeDest())
			}
			res, err := codegen.Generate(req.sn, codegen.Options{
				Arch: rw.arch, Mode: rw.mode, DeadRegs: dead,
			})
			if err != nil {
				return nil, fmt.Errorf("patch: generating edge snippet at %v: %w", req.point, err)
			}
			edgeIns = append(edgeIns, EdgeInsertion{
				Block: req.point.Block, Kind: req.point.Kind, Code: res.Insts,
			})
		}
		rel, err := RelocateWithEdges(fn, rw.st, insertions, edgeIns, trampNext, rw.arch)
		if err != nil {
			return nil, err
		}

		// Entry patch: redirect the original entry to the relocated copy,
		// choosing the cheapest jump that fits in the function's extent.
		lo, hi := fn.Extent()
		if lo != fn.Entry {
			return nil, fmt.Errorf("patch: function %s extent starts at %#x, not its entry", fn.Name, lo)
		}
		room := hi - fn.Entry
		scratch := riscv.RegNone
		if dead := rw.livenessFor(fn).DeadScratchX(fn.Entry); len(dead) > 0 {
			scratch = dead[0]
		}
		newEntry := rel.AddrMap[fn.Entry]
		kind, bytes, err := JumpPatch(fn.Entry, newEntry, room, rw.arch, scratch, false)
		if err != nil {
			return nil, fmt.Errorf("patch: function %s: %w", fn.Name, err)
		}
		if err := rw.patchBytes(secData, fn.Entry, bytes); err != nil {
			return nil, err
		}
		rw.Patches = append(rw.Patches, PatchRecord{
			Func: fn.Name, Kind: kind, From: fn.Entry, To: newEntry,
		})

		// Repoint jump-table slots at the relocated blocks.
		for _, b := range fn.Blocks {
			if b.Purpose != parse.PurposeJumpTable || b.TableCount == 0 {
				continue
			}
			for i := uint64(0); i < b.TableCount; i++ {
				slot := b.TableBase + i*b.TableStride
				old, ok := rw.st.ReadMem(slot, b.TableWidth)
				if !ok {
					return nil, fmt.Errorf("patch: cannot read jump table slot %#x", slot)
				}
				nt, ok := rel.AddrMap[old&^1]
				if !ok {
					return nil, fmt.Errorf("patch: jump table slot %#x target %#x not relocated", slot, old)
				}
				var buf [8]byte
				for j := 0; j < b.TableWidth; j++ {
					buf[j] = byte(nt >> (8 * j))
				}
				if err := rw.patchBytes(secData, slot, buf[:b.TableWidth]); err != nil {
					return nil, err
				}
			}
		}

		trampCode = append(trampCode, rel.Code...)
		trampNext += uint64(len(rel.Code))
		out.Symbols = append(out.Symbols, elfrv.Symbol{
			Name: fn.Name + ".dyninst", Value: rel.NewBase,
			Size: uint64(len(rel.Code)), Bind: elfrv.STBLocal,
			Type: elfrv.STTFunc, Section: ".dyninst.text",
		})
	}

	if len(trampCode) > 0 {
		out.Sections = append(out.Sections, &elfrv.Section{
			Name: ".dyninst.text", Type: elfrv.SHTProgbits,
			Flags: elfrv.SHFAlloc | elfrv.SHFExecinstr,
			Addr:  trampBase, Data: trampCode, Align: 4,
		})
	}
	if rw.varNext > rw.varBase {
		out.Sections = append(out.Sections, &elfrv.Section{
			Name: ".dyninst.data", Type: elfrv.SHTProgbits,
			Flags: elfrv.SHFAlloc | elfrv.SHFWrite,
			Addr:  rw.varBase, Data: make([]byte, rw.varNext-rw.varBase), Align: 8,
		})
		for _, v := range rw.vars {
			out.Symbols = append(out.Symbols, elfrv.Symbol{
				Name: v.Name, Value: v.Addr, Size: uint64(v.Width),
				Bind: elfrv.STBLocal, Type: elfrv.STTObject, Section: ".dyninst.data",
			})
		}
	}
	return out, nil
}

// patchBytes writes into the cloned section data covering addr.
func (rw *Rewriter) patchBytes(secData map[string][]byte, addr uint64, b []byte) error {
	for _, r := range rw.st.Regions {
		if addr >= r.Addr && addr+uint64(len(b)) <= r.Addr+r.Size {
			data, ok := secData[r.Name]
			if !ok {
				return fmt.Errorf("patch: section %s has no initialized data to patch", r.Name)
			}
			copy(data[addr-r.Addr:], b)
			return nil
		}
	}
	return fmt.Errorf("patch: address %#x not inside any section", addr)
}
