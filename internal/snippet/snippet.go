// Package snippet defines the machine-independent abstract syntax trees
// that describe instrumentation code, and the instrumentation points where
// snippets are inserted (paper Section 2). Tools compose snippets from
// these nodes without any knowledge of the target ISA; the codegen package
// lowers them to RISC-V instruction sequences.
//
// The AST node set follows the paper's enumeration: reading and writing
// memory variables, basic logical and arithmetic operations, calling
// functions, and conditional control flow.
package snippet

import (
	"fmt"

	"rvdyn/internal/parse"
)

// Snippet is one AST node.
type Snippet interface {
	fmt.Stringer
	snippetNode()
}

// ---------------------------------------------------------------------------
// Expressions

// ConstInt is an integer literal.
type ConstInt struct{ Val int64 }

// Var is an instrumentation variable living in the mutatee's memory. Create
// variables with the mutator (core.Binary.NewVar); Addr is assigned when the
// variable is allocated in the rewritten binary's data section.
type Var struct {
	Name  string
	Width int // bytes: 1, 2, 4, or 8
	Addr  uint64
}

// ParamReg reads an argument register of the mutatee at the point (0..7 =
// a0..a7): the low-level escape hatch for argument tracing tools.
type ParamReg struct{ Index int }

// BinOpKind enumerates the arithmetic/logical/relational operators.
type BinOpKind int

const (
	OpAdd BinOpKind = iota
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (k BinOpKind) String() string {
	return [...]string{"+", "-", "*", "&", "|", "^", "<<", ">>", "==", "!=", "<", "<=", ">", ">="}[k]
}

// BinOp applies a binary operator to two sub-expressions.
type BinOp struct {
	Op   BinOpKind
	L, R Snippet
}

// ---------------------------------------------------------------------------
// Statements

// Assign stores the value of Src into the variable Dst.
type Assign struct {
	Dst *Var
	Src Snippet
}

// Sequence executes its children in order.
type Sequence struct{ List []Snippet }

// If executes Then when Cond is non-zero, else Else (which may be nil).
type If struct {
	Cond Snippet
	Then Snippet
	Else Snippet
}

// CallFunc calls a function in the mutatee at the given entry address,
// passing up to two integer arguments. The generated code saves and
// restores the ABI's caller-saved state around the call.
type CallFunc struct {
	Entry uint64
	Args  []Snippet
}

func (ConstInt) snippetNode() {}
func (*Var) snippetNode()     {}
func (ParamReg) snippetNode() {}
func (BinOp) snippetNode()    {}
func (Assign) snippetNode()   {}
func (Sequence) snippetNode() {}
func (If) snippetNode()       {}
func (CallFunc) snippetNode() {}

func (c ConstInt) String() string { return fmt.Sprintf("%d", c.Val) }
func (v *Var) String() string     { return v.Name }
func (p ParamReg) String() string { return fmt.Sprintf("arg%d", p.Index) }
func (b BinOp) String() string    { return fmt.Sprintf("(%v %v %v)", b.L, b.Op, b.R) }
func (a Assign) String() string   { return fmt.Sprintf("%v = %v", a.Dst, a.Src) }
func (s Sequence) String() string {
	out := "{"
	for i, c := range s.List {
		if i > 0 {
			out += "; "
		}
		out += c.String()
	}
	return out + "}"
}
func (i If) String() string {
	if i.Else != nil {
		return fmt.Sprintf("if %v then %v else %v", i.Cond, i.Then, i.Else)
	}
	return fmt.Sprintf("if %v then %v", i.Cond, i.Then)
}
func (c CallFunc) String() string { return fmt.Sprintf("call %#x(%v)", c.Entry, c.Args) }

// Increment is the canonical counter snippet of the paper's benchmarks:
// v = v + 1.
func Increment(v *Var) Snippet {
	return Assign{Dst: v, Src: BinOp{Op: OpAdd, L: v, R: ConstInt{Val: 1}}}
}

// AddTo builds v = v + expr.
func AddTo(v *Var, expr Snippet) Snippet {
	return Assign{Dst: v, Src: BinOp{Op: OpAdd, L: v, R: expr}}
}

// Empty returns the identity snippet: it lowers to zero instructions, so
// inserting it exercises the full relocation-and-patch machinery while the
// instrumented program must behave exactly like the original. The
// differential oracle's instrumentation-equivalence check is built on it.
func Empty() Snippet { return Sequence{} }

// ---------------------------------------------------------------------------
// Points

// PointKind enumerates the paper's point abstractions: instruction level,
// function level, and CFG level.
type PointKind int

const (
	PointFuncEntry PointKind = iota
	PointFuncExit
	PointBlockEntry
	PointCallSite
	PointLoopBegin
	PointInsnBefore
)

func (k PointKind) String() string {
	switch k {
	case PointFuncEntry:
		return "func-entry"
	case PointFuncExit:
		return "func-exit"
	case PointBlockEntry:
		return "block-entry"
	case PointCallSite:
		return "call-site"
	case PointLoopBegin:
		return "loop-begin"
	case PointInsnBefore:
		return "insn-before"
	}
	return "?"
}

// Point is one instrumentation location: instrumentation inserted at a point
// executes immediately before the instruction at Addr.
type Point struct {
	Kind  PointKind
	Addr  uint64
	Func  *parse.Function
	Block *parse.Block
}

func (p Point) String() string {
	name := "?"
	if p.Func != nil {
		name = p.Func.Name
	}
	return fmt.Sprintf("%v@%#x in %s", p.Kind, p.Addr, name)
}

// FuncEntry returns the function-entry point.
func FuncEntry(fn *parse.Function) Point {
	return Point{Kind: PointFuncEntry, Addr: fn.Entry, Func: fn, Block: fn.EntryBlock()}
}

// FuncExits returns one point per exit block (returns, tail calls), placed
// before the terminating instruction so the instrumentation runs on the way
// out.
func FuncExits(fn *parse.Function) []Point {
	var out []Point
	for _, b := range fn.ExitBlocks() {
		out = append(out, Point{Kind: PointFuncExit, Addr: b.Last().Addr, Func: fn, Block: b})
	}
	return out
}

// BlockEntries returns one point per basic block (the paper's second
// benchmark instruments "the start of each basic block in the function").
func BlockEntries(fn *parse.Function) []Point {
	var out []Point
	for _, b := range fn.Blocks {
		out = append(out, Point{Kind: PointBlockEntry, Addr: b.Start, Func: fn, Block: b})
	}
	return out
}

// CallSites returns one point per call instruction in the function.
func CallSites(fn *parse.Function) []Point {
	var out []Point
	for _, b := range fn.Blocks {
		if b.Purpose == parse.PurposeCall {
			out = append(out, Point{Kind: PointCallSite, Addr: b.Last().Addr, Func: fn, Block: b})
		}
	}
	return out
}

// LoopBegins returns one point per loop, at the loop head (executed once
// per iteration).
func LoopBegins(fn *parse.Function) []Point {
	var out []Point
	for _, l := range fn.Loops {
		out = append(out, Point{Kind: PointLoopBegin, Addr: l.Head.Start, Func: fn, Block: l.Head})
	}
	return out
}

// Before returns an instruction-level point at addr.
func Before(fn *parse.Function, addr uint64) (Point, error) {
	b, ok := fn.BlockContaining(addr)
	if !ok {
		return Point{}, fmt.Errorf("snippet: %#x is not inside %s", addr, fn.Name)
	}
	return Point{Kind: PointInsnBefore, Addr: addr, Func: fn, Block: b}, nil
}

// EdgePoint is a CFG-edge instrumentation point: code runs only when the
// identified edge is traversed (paper: "branch-taken and branch-not-taken
// edges, loop back edges").
type EdgePoint struct {
	Func  *parse.Function
	Block *parse.Block   // the edge's source block
	Kind  parse.EdgeKind // EdgeTaken, EdgeNotTaken, or EdgeDirect
}

func (p EdgePoint) String() string {
	return fmt.Sprintf("edge(%v)@%#x in %s", p.Kind, p.Block.Last().Addr, p.Func.Name)
}

// TakenEdge returns the branch-taken edge point of a block ending in a
// conditional branch.
func TakenEdge(fn *parse.Function, b *parse.Block) EdgePoint {
	return EdgePoint{Func: fn, Block: b, Kind: parse.EdgeTaken}
}

// NotTakenEdge returns the branch-not-taken edge point.
func NotTakenEdge(fn *parse.Function, b *parse.Block) EdgePoint {
	return EdgePoint{Func: fn, Block: b, Kind: parse.EdgeNotTaken}
}

// LoopBackEdges returns one edge point per loop back edge of the function.
func LoopBackEdges(fn *parse.Function) []EdgePoint {
	var out []EdgePoint
	for _, l := range fn.Loops {
		for _, e := range l.BackEdges {
			out = append(out, EdgePoint{Func: fn, Block: e.From, Kind: e.Kind})
		}
	}
	return out
}

// EdgeDest returns the address control reaches when the edge is taken —
// the point whose liveness governs scratch-register choice for edge code.
func (p EdgePoint) EdgeDest() uint64 {
	term := p.Block.Last()
	switch p.Kind {
	case parse.EdgeNotTaken:
		return term.Next()
	default:
		return term.Addr + uint64(term.Imm)
	}
}
