package snippet

import (
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/parse"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

func parseMatmul(t *testing.T) *parse.CFG {
	t.Helper()
	f, err := asm.Assemble(workload.MatmulSource(10, 1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := symtab.FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := parse.Parse(st, parse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestPointFinders(t *testing.T) {
	cfg := parseMatmul(t)
	fn, _ := cfg.FuncByName("multiply")

	entry := FuncEntry(fn)
	if entry.Kind != PointFuncEntry || entry.Addr != fn.Entry || entry.Block != fn.EntryBlock() {
		t.Errorf("entry point = %+v", entry)
	}

	exits := FuncExits(fn)
	if len(exits) != 1 {
		t.Fatalf("multiply exits = %v", exits)
	}
	if exits[0].Kind != PointFuncExit {
		t.Errorf("exit kind = %v", exits[0].Kind)
	}
	// The exit point sits at the block's terminating instruction.
	if exits[0].Addr != exits[0].Block.Last().Addr {
		t.Errorf("exit addr %#x != terminator %#x", exits[0].Addr, exits[0].Block.Last().Addr)
	}

	blocks := BlockEntries(fn)
	if len(blocks) != len(fn.Blocks) {
		t.Errorf("%d block points for %d blocks", len(blocks), len(fn.Blocks))
	}
	for i, pt := range blocks {
		if pt.Addr != fn.Blocks[i].Start {
			t.Errorf("block point %d at %#x, block starts %#x", i, pt.Addr, fn.Blocks[i].Start)
		}
	}

	loops := LoopBegins(fn)
	if len(loops) != 3 {
		t.Errorf("loop points = %d, want 3", len(loops))
	}

	start, _ := cfg.FuncByName("_start")
	calls := CallSites(start)
	if len(calls) < 2 {
		t.Errorf("_start call sites = %d, want >= 2 (init + multiply)", len(calls))
	}
	for _, pt := range calls {
		if pt.Kind != PointCallSite || pt.Block.Purpose != parse.PurposeCall {
			t.Errorf("call point %+v", pt)
		}
	}
}

func TestBeforePoint(t *testing.T) {
	cfg := parseMatmul(t)
	fn, _ := cfg.FuncByName("multiply")
	mid := fn.Blocks[2].Insts[0]
	pt, err := Before(fn, mid.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Kind != PointInsnBefore || pt.Addr != mid.Addr || pt.Block != fn.Blocks[2] {
		t.Errorf("point = %+v", pt)
	}
	if _, err := Before(fn, 0xdeadbeef); err == nil {
		t.Error("Before accepted an address outside the function")
	}
}

func TestSnippetStrings(t *testing.T) {
	v := &Var{Name: "counter", Width: 8}
	cases := []struct {
		sn   Snippet
		want string
	}{
		{ConstInt{42}, "42"},
		{v, "counter"},
		{ParamReg{2}, "arg2"},
		{Increment(v), "counter = (counter + 1)"},
		{BinOp{OpMul, ConstInt{2}, ConstInt{3}}, "(2 * 3)"},
		{Sequence{[]Snippet{ConstInt{1}, ConstInt{2}}}, "{1; 2}"},
		{If{Cond: ConstInt{1}, Then: Increment(v)}, "if 1 then counter = (counter + 1)"},
		{CallFunc{Entry: 0x1000}, "call 0x1000([])"},
	}
	for _, c := range cases {
		if got := c.sn.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	// All operator glyphs render.
	ops := []BinOpKind{OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}
	for _, op := range ops {
		if op.String() == "" {
			t.Errorf("operator %d has no glyph", op)
		}
	}
}

func TestPointString(t *testing.T) {
	cfg := parseMatmul(t)
	fn, _ := cfg.FuncByName("multiply")
	s := FuncEntry(fn).String()
	if !strings.Contains(s, "multiply") || !strings.Contains(s, "func-entry") {
		t.Errorf("point string = %q", s)
	}
	for _, k := range []PointKind{PointFuncEntry, PointFuncExit, PointBlockEntry,
		PointCallSite, PointLoopBegin, PointInsnBefore} {
		if k.String() == "?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
}

func TestAddTo(t *testing.T) {
	v := &Var{Name: "sum", Width: 8}
	sn := AddTo(v, ParamReg{0})
	if sn.String() != "sum = (sum + arg0)" {
		t.Errorf("AddTo = %q", sn.String())
	}
}
