// Package asm is a two-pass RV64GC assembler. It turns an assembly source
// string into a runnable ELF64/RISC-V executable (via the elfrv package).
//
// In the paper's experimental setup the benchmark workload is compiled with
// gcc on real RISC-V hardware; in this reproduction the assembler is the
// toolchain substrate that produces genuine RV64GC binaries for the
// emulator, the parser, and the instrumenter to operate on.
//
// Supported syntax (a practical subset of GNU as):
//
//	sections    .text .data .rodata .bss .section NAME
//	symbols     LABEL:   .globl  .local  .type N,@function|@object  .size N,E
//	data        .byte .half .word .dword .zero .ascii .asciz .string .double
//	alignment   .align P2   .balign N
//	constants   .equ NAME, EXPR   (and .set)
//	instructions: every RV64GC mnemonic from the riscv package, plus the
//	standard pseudo-instructions (li la mv not neg nop j jr ret call tail
//	seqz snez beqz bnez bgt ble ... fmv.d fabs.d fneg.d csrr csrw rdcycle
//	rdtime rdinstret) and two far-form pseudos, callfar/tailfar, that emit
//	the auipc+jalr multi-instruction sequences Section 3.2.3 of the paper
//	discusses.
//	relocations  %hi(sym) %lo(sym) in lui/addi/load/store operands
//
// When the target architecture includes the C extension the assembler
// opportunistically compresses instructions that have a 16-bit form, except
// instructions whose immediate refers to a symbol (their offsets must stay
// stable across layout).
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// Options configures assembly.
type Options struct {
	// TextBase is the virtual address of the .text section (default 0x10000).
	TextBase uint64
	// Arch is the target extension set (default RV64GC). Instructions from
	// extensions outside the set are rejected, and compression only happens
	// when the set includes C.
	Arch riscv.ExtSet
	// NoCompress disables the compression pass even when Arch includes C.
	NoCompress bool
	// NoAttributes omits the .riscv.attributes section, exercising the
	// e_flags-only fallback path in symtab.
	NoAttributes bool
}

type modKind uint8

const (
	modNone    modKind = iota
	modHi              // %hi(sym): adjusted high 20 bits of the absolute address
	modLo              // %lo(sym): low 12 bits of the absolute address
	modPCRel           // branch/jal target: encode target-addr as offset
	modPCRelHi         // auipc half of a far pair
	modPCRelLo         // jalr/addi half of a far pair (imm relative to the auipc)
)

// symRef is a symbolic immediate operand awaiting resolution.
type symRef struct {
	sym    string
	addend int64
	mod    modKind
	pair   *item // for modPCRelLo: the auipc item supplying the base address
}

type itemKind uint8

const (
	itemInst itemKind = iota
	itemData
	itemAlign
)

type item struct {
	kind itemKind
	inst riscv.Inst
	ref  *symRef
	data []byte
	p2   uint64 // for itemAlign: alignment in bytes
	size uint64
	addr uint64
	line int
}

type section struct {
	name  string
	items []*item
	flags uint64
	typ   uint32
	addr  uint64
	size  uint64
}

type symInfo struct {
	section *section
	item    int // index into section.items the label precedes (== len means end)
	addr    uint64
	global  bool
	typ     byte
	size    uint64
	hasSize bool
	defined bool
	line    int

	// For ".size sym, .-sym": the position marking the end of the symbol.
	sizeEndSection *section
	sizeEndItem    int
}

type assembler struct {
	opts     Options
	sections map[string]*section
	order    []*section
	cur      *section
	syms     map[string]*symInfo
	equs     map[string]int64
	usedExt  riscv.ExtSet
	line     int
	compress bool
}

// Assemble assembles source into an ELF executable image.
func Assemble(src string, opts Options) (*elfrv.File, error) {
	if opts.TextBase == 0 {
		opts.TextBase = 0x10000
	}
	if opts.Arch == 0 {
		opts.Arch = riscv.RV64GC
	}
	a := &assembler{
		opts:     opts,
		sections: map[string]*section{},
		syms:     map[string]*symInfo{},
		equs:     map[string]int64{},
		usedExt:  riscv.ExtI,
		compress: opts.Arch.Has(riscv.ExtC) && !opts.NoCompress,
	}
	a.switchSection(".text")
	for n, raw := range strings.Split(src, "\n") {
		a.line = n + 1
		if err := a.doLine(raw); err != nil {
			return nil, fmt.Errorf("line %d: %w", a.line, err)
		}
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	return a.buildFile()
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func (a *assembler) switchSection(name string) {
	if s, ok := a.sections[name]; ok {
		a.cur = s
		return
	}
	s := &section{name: name, typ: elfrv.SHTProgbits, flags: elfrv.SHFAlloc}
	switch name {
	case ".text":
		s.flags |= elfrv.SHFExecinstr
	case ".data":
		s.flags |= elfrv.SHFWrite
	case ".bss":
		s.flags |= elfrv.SHFWrite
		s.typ = elfrv.SHTNobits
	case ".rodata":
		// read-only alloc
	default:
		s.flags |= elfrv.SHFWrite
	}
	a.sections[name] = s
	a.order = append(a.order, s)
	a.cur = s
}

// stripComment removes # and // comments outside of string literals.
func stripComment(s string) string {
	inStr := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] == '"':
			inStr = !inStr
		case !inStr && s[i] == '#':
			return s[:i]
		case !inStr && s[i] == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

func (a *assembler) doLine(raw string) error {
	s := strings.TrimSpace(stripComment(raw))
	for {
		if s == "" {
			return nil
		}
		// Peel off leading labels.
		if i := strings.IndexByte(s, ':'); i > 0 && isIdent(s[:i]) && !strings.ContainsAny(s[:i], " \t") {
			if err := a.defineLabel(s[:i]); err != nil {
				return err
			}
			s = strings.TrimSpace(s[i+1:])
			continue
		}
		break
	}
	if strings.HasPrefix(s, ".") {
		return a.doDirective(s)
	}
	return a.doInstruction(s)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c == '.' || c == '$' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

func (a *assembler) defineLabel(name string) error {
	si := a.symbol(name)
	if si.defined {
		return a.errf("symbol %q redefined (first at line %d)", name, si.line)
	}
	si.defined = true
	si.section = a.cur
	si.item = len(a.cur.items)
	si.line = a.line
	return nil
}

func (a *assembler) symbol(name string) *symInfo {
	if si, ok := a.syms[name]; ok {
		return si
	}
	si := &symInfo{}
	a.syms[name] = si
	return si
}

func splitOperands(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" || len(out) > 0 {
		out = append(out, tail)
	}
	return out
}

func (a *assembler) doDirective(s string) error {
	name := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i > 0 {
		name, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	ops := splitOperands(rest)
	switch name {
	case ".text", ".data", ".bss", ".rodata":
		a.switchSection(name)
	case ".section":
		if len(ops) < 1 {
			return a.errf(".section needs a name")
		}
		a.switchSection(ops[0])
	case ".globl", ".global":
		for _, op := range ops {
			a.symbol(op).global = true
		}
	case ".local":
		for _, op := range ops {
			a.symbol(op).global = false
		}
	case ".type":
		if len(ops) != 2 {
			return a.errf(".type needs symbol and kind")
		}
		switch strings.TrimPrefix(ops[1], "@") {
		case "function":
			a.symbol(ops[0]).typ = elfrv.STTFunc
		case "object":
			a.symbol(ops[0]).typ = elfrv.STTObject
		default:
			return a.errf("unknown .type kind %q", ops[1])
		}
	case ".size":
		if len(ops) != 2 {
			return a.errf(".size needs symbol and size expression")
		}
		si := a.symbol(ops[0])
		if ops[1] == ".-"+ops[0] {
			// Resolved at layout: from symbol to current position.
			si.hasSize = true
			si.size = ^uint64(0) // sentinel: compute to "here"
			a.markSizeEnd(ops[0])
			return nil
		}
		v, err := a.constExpr(ops[1])
		if err != nil {
			return err
		}
		si.hasSize = true
		si.size = uint64(v)
	case ".equ", ".set":
		if len(ops) != 2 {
			return a.errf("%s needs name and value", name)
		}
		v, err := a.constExpr(ops[1])
		if err != nil {
			return err
		}
		a.equs[ops[0]] = v
	case ".align", ".p2align":
		v, err := a.constExpr(ops[0])
		if err != nil {
			return err
		}
		if v < 0 || v > 12 {
			return a.errf("bad alignment power %d", v)
		}
		a.cur.items = append(a.cur.items, &item{kind: itemAlign, p2: uint64(1) << uint(v), line: a.line})
	case ".balign":
		v, err := a.constExpr(ops[0])
		if err != nil {
			return err
		}
		if v <= 0 || v&(v-1) != 0 {
			return a.errf("bad byte alignment %d", v)
		}
		a.cur.items = append(a.cur.items, &item{kind: itemAlign, p2: uint64(v), line: a.line})
	case ".byte", ".half", ".word", ".dword", ".quad":
		width := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".dword": 8, ".quad": 8}[name]
		for _, op := range ops {
			if width == 8 {
				if sym, add, ok := a.symPlusAddend(op); ok {
					it := &item{kind: itemData, data: make([]byte, 8), size: 8, line: a.line,
						ref: &symRef{sym: sym, addend: add, mod: modNone}}
					a.cur.items = append(a.cur.items, it)
					continue
				}
			}
			v, err := a.constExpr(op)
			if err != nil {
				return err
			}
			b := make([]byte, width)
			for i := 0; i < width; i++ {
				b[i] = byte(v >> (8 * i))
			}
			a.cur.items = append(a.cur.items, &item{kind: itemData, data: b, size: uint64(width), line: a.line})
		}
	case ".zero", ".space":
		v, err := a.constExpr(ops[0])
		if err != nil {
			return err
		}
		if v < 0 {
			return a.errf("negative .zero size")
		}
		a.cur.items = append(a.cur.items, &item{kind: itemData, data: make([]byte, v), size: uint64(v), line: a.line})
	case ".ascii", ".asciz", ".string":
		str, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("bad string literal %s: %v", rest, err)
		}
		b := []byte(str)
		if name != ".ascii" {
			b = append(b, 0)
		}
		a.cur.items = append(a.cur.items, &item{kind: itemData, data: b, size: uint64(len(b)), line: a.line})
	case ".double":
		for _, op := range ops {
			f, err := strconv.ParseFloat(op, 64)
			if err != nil {
				return a.errf("bad double %q: %v", op, err)
			}
			u := math.Float64bits(f)
			b := make([]byte, 8)
			for i := 0; i < 8; i++ {
				b[i] = byte(u >> (8 * i))
			}
			a.cur.items = append(a.cur.items, &item{kind: itemData, data: b, size: 8, line: a.line})
		}
	case ".float":
		for _, op := range ops {
			f, err := strconv.ParseFloat(op, 32)
			if err != nil {
				return a.errf("bad float %q: %v", op, err)
			}
			u := math.Float32bits(float32(f))
			b := []byte{byte(u), byte(u >> 8), byte(u >> 16), byte(u >> 24)}
			a.cur.items = append(a.cur.items, &item{kind: itemData, data: b, size: 4, line: a.line})
		}
	case ".option":
		// accepted and ignored (norvc/rvc handled via Options)
	default:
		return a.errf("unknown directive %s", name)
	}
	return nil
}

// markSizeEnd records that the ".-sym" size expression ends at the current
// position of the current section.
func (a *assembler) markSizeEnd(sym string) {
	si := a.symbol(sym)
	si.sizeEndSection = a.cur
	si.sizeEndItem = len(a.cur.items)
}

// constExpr evaluates a constant expression: a literal, an .equ name, or a
// simple a+b / a-b / a*b of such.
func (a *assembler) constExpr(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf("empty expression")
	}
	// Binary operators at top level (left-to-right, no precedence beyond
	// scanning from the right so a-b+c parses as (a-b)+c).
	depth := 0
	for i := len(s) - 1; i > 0; i-- {
		c := s[i]
		switch c {
		case ')':
			depth++
		case '(':
			depth--
		case '+', '-', '*':
			if depth != 0 {
				continue
			}
			// Avoid treating a leading sign, another operator, or a hex
			// prefix ("0x") as a binary operator boundary.
			prev := s[i-1]
			if prev == '+' || prev == '-' || prev == '*' {
				continue
			}
			if (prev == 'x' || prev == 'X') && i >= 2 && s[i-2] == '0' {
				continue
			}
			l, err := a.constExpr(s[:i])
			if err != nil {
				return 0, err
			}
			r, err := a.constExpr(s[i+1:])
			if err != nil {
				return 0, err
			}
			switch c {
			case '+':
				return l + r, nil
			case '-':
				return l - r, nil
			case '*':
				return l * r, nil
			}
		}
	}
	if v, ok := a.equs[s]; ok {
		return v, nil
	}
	if strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 3 {
		r, _, _, err := strconv.UnquoteChar(s[1:len(s)-1], '\'')
		if err != nil {
			return 0, a.errf("bad char literal %s", s)
		}
		return int64(r), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow big unsigned hex.
		if u, uerr := strconv.ParseUint(s, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, a.errf("bad expression %q", s)
	}
	return v, nil
}

// symPlusAddend matches "sym", "sym+N", "sym-N" for identifier syms that are
// not .equ constants.
func (a *assembler) symPlusAddend(s string) (string, int64, bool) {
	s = strings.TrimSpace(s)
	base, add := s, int64(0)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			v, err := a.constExpr(s[i:])
			if err != nil {
				return "", 0, false
			}
			base, add = s[:i], v
			break
		}
	}
	if !isIdent(base) {
		return "", 0, false
	}
	if _, isEqu := a.equs[base]; isEqu {
		return "", 0, false
	}
	if _, err := strconv.ParseInt(base, 0, 64); err == nil {
		return "", 0, false
	}
	return base, add, true
}
