package asm

import (
	"fmt"
	"sort"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// layout assigns section base addresses, item addresses, and symbol values,
// applies branch relaxation, then resolves every symbolic reference.
func (a *assembler) layout() error {
	secs := a.orderedSections()

	// Iterate placement + relaxation to a fixed point: label branches start
	// at their 4-byte encodings; once addresses are known, any whose offset
	// fits a compressed form (with a safety margin for alignment drift)
	// shrinks to 2 bytes. Shrinking only moves endpoints closer together,
	// so the greedy loop converges and never invalidates a prior choice.
	for pass := 0; pass < 8; pass++ {
		a.placeSections(secs)
		if err := a.assignSymbols(); err != nil {
			return err
		}
		if !a.compress || !a.relaxPass(secs) {
			break
		}
	}

	// Reference resolution.
	for _, s := range secs {
		for _, it := range s.items {
			if it.ref == nil {
				continue
			}
			si, ok := a.syms[it.ref.sym]
			if !ok || !si.defined {
				return fmt.Errorf("line %d: undefined symbol %q", it.line, it.ref.sym)
			}
			val := int64(si.addr) + it.ref.addend
			switch it.ref.mod {
			case modNone:
				if it.kind == itemData {
					for i := 0; i < 8; i++ {
						it.data[i] = byte(uint64(val) >> (8 * i))
					}
					continue
				}
				it.inst.Imm = val
			case modHi:
				hi := (val + 0x800) >> 12
				it.inst.Imm = hi << 44 >> 44
			case modLo:
				it.inst.Imm = val << 52 >> 52
			case modPCRel:
				it.inst.Imm = val - int64(it.addr)
			case modPCRelHi:
				off := val - int64(it.addr)
				hi := (off + 0x800) >> 12
				it.inst.Imm = hi << 44 >> 44
			case modPCRelLo:
				off := val - int64(it.ref.pair.addr)
				hi := (off + 0x800) >> 12
				it.inst.Imm = off - hi<<12
			}
		}
	}
	return nil
}

// placeSections assigns section, item, and alignment-gap addresses.
func (a *assembler) placeSections(secs []*section) {
	addr := a.opts.TextBase
	for _, s := range secs {
		addr = (addr + 0xfff) &^ 0xfff
		s.addr = addr
		cur := addr
		for _, it := range s.items {
			if it.kind == itemAlign {
				aligned := (cur + it.p2 - 1) &^ (it.p2 - 1)
				it.size = aligned - cur
				it.addr = cur
				cur = aligned
				continue
			}
			it.addr = cur
			cur += it.size
		}
		s.size = cur - addr
		addr = cur
	}
}

// assignSymbols computes symbol addresses and ".-sym" sizes.
func (a *assembler) assignSymbols() error {
	for name, si := range a.syms {
		if !si.defined {
			continue
		}
		if si.item < len(si.section.items) {
			si.addr = si.section.items[si.item].addr
		} else {
			si.addr = si.section.addr + si.section.size
		}
		if si.hasSize && si.sizeEndSection != nil {
			var end uint64
			if si.sizeEndItem < len(si.sizeEndSection.items) {
				end = si.sizeEndSection.items[si.sizeEndItem].addr
			} else {
				end = si.sizeEndSection.addr + si.sizeEndSection.size
			}
			if end < si.addr {
				return fmt.Errorf("symbol %s: .size end precedes symbol", name)
			}
			si.size = end - si.addr
		}
	}
	return nil
}

// relaxMargin keeps compressed branch choices valid while alignment gaps
// shift between passes.
const relaxMargin = 64

// relaxPass shrinks 4-byte label branches to compressed forms where the
// current offsets fit. It reports whether anything changed.
func (a *assembler) relaxPass(secs []*section) bool {
	changed := false
	for _, s := range secs {
		if s.flags&elfrv.SHFExecinstr == 0 {
			continue
		}
		for _, it := range s.items {
			if it.kind != itemInst || it.ref == nil || it.ref.mod != modPCRel || it.size != 4 {
				continue
			}
			si, ok := a.syms[it.ref.sym]
			if !ok || !si.defined {
				continue
			}
			trial := it.inst
			trial.Imm = int64(si.addr) + it.ref.addend - int64(it.addr)
			if trial.Imm >= 0 {
				trial.Imm += relaxMargin
			} else {
				trial.Imm -= relaxMargin
			}
			if trial.Imm&1 != 0 {
				trial.Imm++
			}
			if _, ok := riscv.Compress(trial); ok {
				it.size = 2
				it.inst.Compressed = true
				changed = true
			}
		}
	}
	return changed
}

func (a *assembler) orderedSections() []*section {
	secs := append([]*section(nil), a.order...)
	rank := func(s *section) int {
		switch s.name {
		case ".text":
			return 0
		case ".rodata":
			return 1
		case ".data":
			return 2
		case ".bss":
			return 4
		}
		return 3
	}
	sort.SliceStable(secs, func(i, j int) bool { return rank(secs[i]) < rank(secs[j]) })
	return secs
}

// buildFile encodes every item and assembles the elfrv.File.
func (a *assembler) buildFile() (*elfrv.File, error) {
	f := &elfrv.File{}
	usedRVC := false

	for _, s := range a.orderedSections() {
		if s.typ == elfrv.SHTNobits {
			f.Sections = append(f.Sections, &elfrv.Section{
				Name: s.name, Type: s.typ, Flags: s.flags,
				Addr: s.addr, MemSize: s.size, Align: 8,
			})
			continue
		}
		data := make([]byte, 0, s.size)
		exec := s.flags&elfrv.SHFExecinstr != 0
		for _, it := range s.items {
			switch it.kind {
			case itemData:
				data = append(data, it.data...)
			case itemAlign:
				data = append(data, a.padding(exec, it.size)...)
			case itemInst:
				b, err := riscv.EncodeBytes(it.inst)
				if err != nil {
					return nil, fmt.Errorf("line %d: %v", it.line, err)
				}
				if uint64(len(b)) != it.size {
					return nil, fmt.Errorf("line %d: %s sized %d but encoded %d bytes",
						it.line, it.inst.Mn, it.size, len(b))
				}
				if len(b) == 2 {
					usedRVC = true
				}
				data = append(data, b...)
			}
		}
		if uint64(len(data)) != s.size {
			return nil, fmt.Errorf("section %s: layout size %d != encoded size %d", s.name, s.size, len(data))
		}
		if len(data) == 0 {
			continue
		}
		align := uint64(8)
		if exec {
			align = 4
		}
		f.Sections = append(f.Sections, &elfrv.Section{
			Name: s.name, Type: s.typ, Flags: s.flags,
			Addr: s.addr, Data: data, Align: align,
		})
	}

	// Symbols, with automatic function sizes: a function without an explicit
	// .size extends to the next defined symbol in its section or section end.
	type addrSym struct {
		name string
		si   *symInfo
	}
	var all []addrSym
	for name, si := range a.syms {
		if si.defined {
			all = append(all, addrSym{name, si})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].si.addr != all[j].si.addr {
			return all[i].si.addr < all[j].si.addr
		}
		return all[i].name < all[j].name
	})
	// Labels in executable sections that are exported default to function
	// type (hand-written assembly rarely bothers with .type for _start).
	for _, as := range all {
		si := as.si
		if si.typ == 0 && si.global && si.section.flags&elfrv.SHFExecinstr != 0 {
			si.typ = elfrv.STTFunc
		}
	}
	for i, as := range all {
		si := as.si
		size := si.size
		if !si.hasSize {
			// Auto-size: extend to the next function symbol in the section
			// (plain local labels are branch targets, not boundaries).
			end := si.section.addr + si.section.size
			for j := i + 1; j < len(all); j++ {
				if all[j].si.section == si.section && all[j].si.addr > si.addr &&
					all[j].si.typ == elfrv.STTFunc {
					end = all[j].si.addr
					break
				}
			}
			size = end - si.addr
		}
		bind := byte(elfrv.STBLocal)
		if si.global {
			bind = elfrv.STBGlobal
		}
		f.Symbols = append(f.Symbols, elfrv.Symbol{
			Name: as.name, Value: si.addr, Size: size,
			Bind: bind, Type: si.typ, Section: si.section.name,
		})
	}

	// Entry point: _start, else main, else the text base.
	f.Entry = a.opts.TextBase
	for _, cand := range []string{"_start", "main"} {
		if si, ok := a.syms[cand]; ok && si.defined {
			f.Entry = si.addr
			break
		}
	}

	// Processor-specific metadata (Section 3.2.1 of the paper).
	if usedRVC {
		f.Flags |= elfrv.EFRiscVRVC
	}
	switch {
	case a.usedExt.Has(riscv.ExtD):
		f.Flags |= elfrv.EFRiscVFloatABIDouble
	case a.usedExt.Has(riscv.ExtF):
		f.Flags |= elfrv.EFRiscVFloatABISingle
	}
	if !a.opts.NoAttributes {
		f.SetRISCVAttributes(elfrv.Attributes{
			Arch:       a.opts.Arch.ArchString(),
			StackAlign: 16,
		})
	}
	return f, nil
}

// padding fills alignment gaps: executable sections get nop encodings so a
// linear-sweep disassembler can keep decoding, data sections get zeros.
func (a *assembler) padding(exec bool, n uint64) []byte {
	out := make([]byte, 0, n)
	if !exec {
		return make([]byte, n)
	}
	for n >= 4 {
		out = append(out, 0x13, 0x00, 0x00, 0x00) // nop
		n -= 4
	}
	for n >= 2 {
		out = append(out, 0x01, 0x00) // c.nop
		n -= 2
	}
	for n > 0 {
		out = append(out, 0)
		n--
	}
	return out
}
