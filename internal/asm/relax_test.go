package asm

import (
	"testing"

	"rvdyn/internal/riscv"
)

// TestBranchRelaxation: short label branches and jumps compress to
// c.beqz/c.bnez/c.j, as gcc emits them; long ones stay 4-byte.
func TestBranchRelaxation(t *testing.T) {
	src := `
	.text
_start:
loop:
	addi a0, a0, -1
	bnez a0, loop      # short backward: c.bnez
	beqz a0, done      # short forward: c.beqz
	j loop             # short backward: c.j
done:
	ret
`
	f := mustAssemble(t, src, Options{})
	insts := decodeText(t, f)
	var kinds []string
	for _, in := range insts {
		if in.Compressed {
			kinds = append(kinds, "c."+in.Mn.String())
		} else {
			kinds = append(kinds, in.Mn.String())
		}
	}
	want := map[int]bool{1: true, 2: true, 3: true} // bnez, beqz, j
	for i := range want {
		if !insts[i].Compressed {
			t.Errorf("inst %d (%v) not compressed: %v", i, insts[i].Mn, kinds)
		}
	}
	// Semantics: offsets must still land on the labels.
	if tgt, _ := insts[1].Target(); tgt != insts[0].Addr {
		t.Errorf("bnez target %#x, want %#x", tgt, insts[0].Addr)
	}
	if tgt, _ := insts[3].Target(); tgt != insts[0].Addr {
		t.Errorf("j target %#x, want %#x", tgt, insts[0].Addr)
	}
}

func TestRelaxationLongBranchesStayWide(t *testing.T) {
	src := "\t.text\n_start:\nstart_l:\n"
	for i := 0; i < 1200; i++ {
		src += "\tadd a0, a0, a1\n" // 2-byte? add compresses... use non-compressible
	}
	src += "\tbeqz a0, start_l\n\tj far_l\n"
	for i := 0; i < 1200; i++ {
		src += "\txori a0, a0, 1\n" // 4-byte
	}
	src += "far_l:\n\tret\n"
	f := mustAssemble(t, src, Options{})
	insts := decodeText(t, f)
	var branch, jump riscv.Inst
	for _, in := range insts {
		if in.Mn == riscv.MnBEQ {
			branch = in
		}
		if in.Mn == riscv.MnJAL && in.Rd == riscv.X0 {
			jump = in
		}
	}
	if branch.Compressed {
		t.Error("far backward beqz compressed despite >256B offset")
	}
	if jump.Compressed {
		t.Error("far forward j compressed despite >2KiB offset")
	}
	// Targets still correct.
	if tgt, _ := jump.Target(); tgt == 0 {
		t.Error("jump target lost")
	}
}

// TestRelaxationRoundTrip: a relaxed binary must execute identically.
func TestRelaxationExecutesSame(t *testing.T) {
	src := `
	.text
_start:
	li t0, 25
	li t1, 0
rl_loop:
	add t1, t1, t0
	addi t0, t0, -1
	bnez t0, rl_loop
	mv a0, t1
	li a7, 93
	ecall
`
	f1 := mustAssemble(t, src, Options{})
	f2 := mustAssemble(t, src, Options{NoCompress: true})
	if len(f1.Section(".text").Data) >= len(f2.Section(".text").Data) {
		t.Error("relaxed build not smaller")
	}
}
