package asm

import (
	"testing"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

// decodeText decodes the .text section of f into instructions.
func decodeText(t *testing.T, f *elfrv.File) []riscv.Inst {
	t.Helper()
	sec := f.Section(".text")
	if sec == nil {
		t.Fatal("no .text section")
	}
	var out []riscv.Inst
	for off := 0; off < len(sec.Data); {
		inst, err := riscv.Decode(sec.Data[off:], sec.Addr+uint64(off))
		if err != nil {
			t.Fatalf("decode at +%#x: %v", off, err)
		}
		out = append(out, inst)
		off += inst.Len
	}
	return out
}

func mustAssemble(t *testing.T, src string, opts Options) *elfrv.File {
	t.Helper()
	f, err := Assemble(src, opts)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return f
}

func TestBasicProgram(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	addi a0, zero, 42   # the answer
	li a7, 93           // exit syscall
	ecall
`
	f := mustAssemble(t, src, Options{})
	insts := decodeText(t, f)
	if len(insts) != 3 {
		t.Fatalf("got %d instructions: %v", len(insts), insts)
	}
	if insts[0].Mn != riscv.MnADDI || insts[0].Imm != 42 || insts[0].Rd != riscv.RegA0 {
		t.Errorf("inst 0 = %v", insts[0])
	}
	if insts[1].Mn != riscv.MnADDI || insts[1].Imm != 93 || insts[1].Rd != riscv.RegA7 {
		t.Errorf("inst 1 = %v", insts[1])
	}
	if insts[2].Mn != riscv.MnECALL {
		t.Errorf("inst 2 = %v", insts[2])
	}
	if f.Entry != 0x10000 {
		t.Errorf("entry = %#x", f.Entry)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	src := `
	.text
_start:
loop:
	addi a0, a0, -1
	bnez a0, loop
	beq a0, a1, done
	j loop
done:
	ret
`
	f := mustAssemble(t, src, Options{NoCompress: true})
	insts := decodeText(t, f)
	// bnez -> bne a0, x0, loop: offset back to loop (-4).
	if insts[1].Mn != riscv.MnBNE || insts[1].Imm != -4 {
		t.Errorf("bnez = %v imm %d", insts[1], insts[1].Imm)
	}
	if insts[2].Mn != riscv.MnBEQ || insts[2].Imm != 8 {
		t.Errorf("beq = %v imm %d", insts[2], insts[2].Imm)
	}
	if insts[3].Mn != riscv.MnJAL || insts[3].Rd != riscv.X0 || insts[3].Imm != -12 {
		t.Errorf("j = %v imm %d", insts[3], insts[3].Imm)
	}
	if insts[4].Mn != riscv.MnJALR || insts[4].Rs1 != riscv.RegRA {
		t.Errorf("ret = %v", insts[4])
	}
}

func TestCompression(t *testing.T) {
	src := `
	.text
_start:
	addi sp, sp, -16
	sd ra, 8(sp)
	mv a0, a1
	ld ra, 8(sp)
	addi sp, sp, 16
	ret
`
	f := mustAssemble(t, src, Options{})
	insts := decodeText(t, f)
	compressed := 0
	for _, i := range insts {
		if i.Compressed {
			compressed++
		}
	}
	if compressed != len(insts) {
		t.Errorf("%d/%d compressed; want all", compressed, len(insts))
	}
	if f.Flags&elfrv.EFRiscVRVC == 0 {
		t.Error("e_flags missing RVC")
	}
	// The same program without compression decodes identically but larger.
	f2 := mustAssemble(t, src, Options{NoCompress: true})
	insts2 := decodeText(t, f2)
	if len(insts2) != len(insts) {
		t.Fatalf("instruction count changed: %d vs %d", len(insts2), len(insts))
	}
	for i := range insts {
		if insts[i].Mn != insts2[i].Mn {
			t.Errorf("inst %d: %v vs %v", i, insts[i].Mn, insts2[i].Mn)
		}
		if insts2[i].Compressed {
			t.Errorf("inst %d compressed despite NoCompress", i)
		}
	}
	if f2.Flags&elfrv.EFRiscVRVC != 0 {
		t.Error("NoCompress output still sets RVC flag")
	}
}

func TestLiMaterialization(t *testing.T) {
	// Check that li sequences compute the right value by interpreting the
	// generated instructions symbolically.
	cases := []int64{0, 1, -1, 42, 2047, -2048, 2048, 4096, 123456, -123456,
		1 << 20, (1 << 31) - 1, -(1 << 31), 1 << 32, 0x123456789abcdef0,
		-0x123456789abcdef0, 1<<63 - 1, -(1 << 62)}
	for _, v := range cases {
		src := "\t.text\n_start:\n\tli a0, " + itoa(v) + "\n"
		f := mustAssemble(t, src, Options{})
		insts := decodeText(t, f)
		var reg int64
		for _, in := range insts {
			switch in.Mn {
			case riscv.MnADDI:
				if in.Rs1 == riscv.X0 {
					reg = in.Imm
				} else {
					reg += in.Imm
				}
			case riscv.MnADDIW:
				reg = int64(int32(reg + in.Imm))
			case riscv.MnLUI:
				reg = in.Imm << 12
			case riscv.MnSLLI:
				reg <<= uint(in.Imm)
			default:
				t.Fatalf("li %d: unexpected %v", v, in)
			}
		}
		if reg != v {
			t.Errorf("li %d materialized %d (insts %v)", v, reg, insts)
		}
	}
}

func itoa(v int64) string {
	if v >= 0 {
		return ustr(uint64(v))
	}
	return "-" + ustr(uint64(-v))
}

func ustr(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestHiLoRelocation(t *testing.T) {
	src := `
	.data
	.globl counter
counter:
	.dword 7
	.text
_start:
	lui t0, %hi(counter)
	ld t1, %lo(counter)(t0)
	la t2, counter
`
	f := mustAssemble(t, src, Options{NoCompress: true})
	sym, ok := f.Symbol("counter")
	if !ok {
		t.Fatal("no counter symbol")
	}
	insts := decodeText(t, f)
	hi := insts[0].Imm << 12
	lo := insts[1].Imm
	if uint64(hi+lo) != sym.Value {
		t.Errorf("%%hi+%%lo = %#x, symbol at %#x", hi+lo, sym.Value)
	}
	// la: lui+addi must also hit the symbol.
	la := insts[2].Imm<<12 + insts[3].Imm
	if uint64(la) != sym.Value {
		t.Errorf("la = %#x, symbol at %#x", la, sym.Value)
	}
	// The .dword initializer.
	b, err := f.ReadAt(sym.Value, 8)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 7 {
		t.Errorf("counter initial = %v", b)
	}
}

func TestCallFarPair(t *testing.T) {
	src := `
	.text
_start:
	callfar target
	tailfar target
	.balign 4
target:
	ret
`
	f := mustAssemble(t, src, Options{NoCompress: true})
	insts := decodeText(t, f)
	sym, _ := f.Symbol("target")
	// callfar: auipc ra + jalr ra.
	if insts[0].Mn != riscv.MnAUIPC || insts[0].Rd != riscv.RegRA {
		t.Fatalf("inst 0 = %v", insts[0])
	}
	if insts[1].Mn != riscv.MnJALR || insts[1].Rd != riscv.RegRA || insts[1].Rs1 != riscv.RegRA {
		t.Fatalf("inst 1 = %v", insts[1])
	}
	got := uint64(int64(insts[0].Addr) + insts[0].Imm<<12 + insts[1].Imm)
	if got != sym.Value {
		t.Errorf("callfar resolves to %#x, want %#x", got, sym.Value)
	}
	// tailfar: auipc t1 + jalr x0.
	if insts[2].Mn != riscv.MnAUIPC || insts[2].Rd != riscv.RegT1 {
		t.Fatalf("inst 2 = %v", insts[2])
	}
	if insts[3].Mn != riscv.MnJALR || insts[3].Rd != riscv.X0 || insts[3].Rs1 != riscv.RegT1 {
		t.Fatalf("inst 3 = %v", insts[3])
	}
	got = uint64(int64(insts[2].Addr) + insts[2].Imm<<12 + insts[3].Imm)
	if got != sym.Value {
		t.Errorf("tailfar resolves to %#x, want %#x", got, sym.Value)
	}
}

func TestFunctionSymbols(t *testing.T) {
	src := `
	.text
	.globl main
	.type main, @function
main:
	call helper
	ret
	.size main, .-main

	.type helper, @function
helper:
	addi a0, a0, 1
	ret
	.size helper, .-helper
`
	f := mustAssemble(t, src, Options{NoCompress: true})
	m, ok := f.Symbol("main")
	if !ok || m.Type != elfrv.STTFunc || m.Bind != elfrv.STBGlobal {
		t.Fatalf("main = %+v ok=%v", m, ok)
	}
	if m.Size != 8 {
		t.Errorf("main size = %d, want 8", m.Size)
	}
	h, ok := f.Symbol("helper")
	if !ok || h.Type != elfrv.STTFunc {
		t.Fatalf("helper = %+v ok=%v", h, ok)
	}
	if h.Bind != elfrv.STBLocal {
		t.Errorf("helper bind = %d, want local", h.Bind)
	}
	if h.Size != 8 {
		t.Errorf("helper size = %d", h.Size)
	}
}

func TestAutoFunctionSize(t *testing.T) {
	src := `
	.text
	.type f1, @function
f1:
	nop
	nop
	.type f2, @function
f2:
	ret
`
	f := mustAssemble(t, src, Options{NoCompress: true})
	s1, _ := f.Symbol("f1")
	if s1.Size != 8 {
		t.Errorf("f1 auto size = %d, want 8", s1.Size)
	}
	s2, _ := f.Symbol("f2")
	if s2.Size != 4 {
		t.Errorf("f2 auto size = %d, want 4", s2.Size)
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
	.data
vals:
	.byte 1, 2, 0xff
	.half 0x1234
	.word -1
	.dword 0x123456789abcdef0
	.zero 3
	.asciz "hi"
	.double 1.5
	.text
_start:
	nop
`
	f := mustAssemble(t, src, Options{})
	d := f.Section(".data")
	if d == nil {
		t.Fatal("no .data")
	}
	want := []byte{1, 2, 0xff, 0x34, 0x12, 0xff, 0xff, 0xff, 0xff,
		0xf0, 0xde, 0xbc, 0x9a, 0x78, 0x56, 0x34, 0x12, 0, 0, 0,
		'h', 'i', 0,
		0, 0, 0, 0, 0, 0, 0xf8, 0x3f} // 1.5 = 0x3FF8000000000000
	if len(d.Data) != len(want) {
		t.Fatalf("data len %d, want %d: %v", len(d.Data), len(want), d.Data)
	}
	for i := range want {
		if d.Data[i] != want[i] {
			t.Errorf("data[%d] = %#x, want %#x", i, d.Data[i], want[i])
		}
	}
}

func TestBssSection(t *testing.T) {
	src := `
	.bss
	.globl buf
buf:
	.zero 4096
	.text
_start:
	la a0, buf
`
	f := mustAssemble(t, src, Options{})
	b := f.Section(".bss")
	if b == nil || b.Type != elfrv.SHTNobits || b.Size() != 4096 {
		t.Fatalf("bss = %+v", b)
	}
	sym, _ := f.Symbol("buf")
	if sym.Value != b.Addr {
		t.Errorf("buf at %#x, bss at %#x", sym.Value, b.Addr)
	}
}

func TestAlignment(t *testing.T) {
	src := `
	.text
_start:
	nop
	.balign 16
aligned:
	nop
`
	f := mustAssemble(t, src, Options{})
	sym, _ := f.Symbol("aligned")
	if sym.Value%16 != 0 {
		t.Errorf("aligned at %#x", sym.Value)
	}
	// Padding must decode as nops.
	insts := decodeText(t, f)
	for _, in := range insts[:len(insts)-1] {
		if in.Mn != riscv.MnADDI {
			t.Errorf("padding decoded as %v", in)
		}
	}
}

func TestEquConstants(t *testing.T) {
	src := `
	.equ SYS_EXIT, 93
	.equ BUFSZ, 4*1024
	.text
_start:
	li a7, SYS_EXIT
	li a0, BUFSZ
`
	f := mustAssemble(t, src, Options{})
	insts := decodeText(t, f)
	if insts[0].Imm != 93 {
		t.Errorf("SYS_EXIT = %d", insts[0].Imm)
	}
	if insts[1].Imm != 1024 || insts[2].Mn != riscv.MnSLLI {
		// 4096 materializes as lui or addi/slli; just verify via symbolic exec
		var reg int64
		for _, in := range insts[1:] {
			switch in.Mn {
			case riscv.MnADDI:
				if in.Rs1 == riscv.X0 {
					reg = in.Imm
				} else {
					reg += in.Imm
				}
			case riscv.MnLUI:
				reg = in.Imm << 12
			case riscv.MnADDIW:
				reg = int64(int32(reg + in.Imm))
			case riscv.MnSLLI:
				reg <<= uint(in.Imm)
			}
		}
		if reg != 4096 {
			t.Errorf("BUFSZ materialized %d", reg)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined symbol", "\t.text\n_start:\n\tj nowhere\n"},
		{"unknown mnemonic", "\t.text\n_start:\n\tbogus a0, a1\n"},
		{"bad register", "\t.text\n_start:\n\taddi q0, a1, 0\n"},
		{"imm out of range", "\t.text\n_start:\n\taddi a0, a1, 99999\n"},
		{"redefined label", "\t.text\nx:\n\tnop\nx:\n\tnop\n"},
		{"wrong operand count", "\t.text\n_start:\n\tadd a0, a1\n"},
		{"ext not in arch", "\t.text\n_start:\n\tfadd.d ft0, ft1, ft2\n"},
	}
	for _, c := range cases {
		opts := Options{}
		if c.name == "ext not in arch" {
			opts.Arch = riscv.ExtI | riscv.ExtM
		}
		if _, err := Assemble(c.src, opts); err == nil {
			t.Errorf("%s: assembled without error", c.name)
		}
	}
}

func TestArchOptionControlsAttributes(t *testing.T) {
	src := "\t.text\n_start:\n\tnop\n"
	f := mustAssemble(t, src, Options{Arch: riscv.ExtI | riscv.ExtM})
	a, ok, err := f.RISCVAttributes()
	if err != nil || !ok {
		t.Fatalf("attrs: %v ok=%v", err, ok)
	}
	set, err := riscv.ParseArchString(a.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if set != riscv.ExtI|riscv.ExtM {
		t.Errorf("arch = %v", set)
	}
	// NoAttributes drops the section.
	f2 := mustAssemble(t, src, Options{NoAttributes: true})
	if _, ok, _ := f2.RISCVAttributes(); ok {
		t.Error("attributes present despite NoAttributes")
	}
}

func TestFloatProgram(t *testing.T) {
	src := `
	.text
_start:
	li t0, 3
	fcvt.d.l ft0, t0
	fadd.d ft1, ft0, ft0
	fmul.d ft2, ft1, ft0
	fmadd.d ft3, ft0, ft1, ft2
	fsqrt.d ft4, ft3
	fmv.d fa0, ft4
	fcvt.l.d a0, fa0
`
	f := mustAssemble(t, src, Options{})
	if f.Flags&elfrv.EFRiscVFloatABIMask != elfrv.EFRiscVFloatABIDouble {
		t.Errorf("float ABI flags = %#x", f.Flags)
	}
	insts := decodeText(t, f)
	var mns []riscv.Mnemonic
	for _, in := range insts {
		mns = append(mns, in.Mn)
	}
	want := []riscv.Mnemonic{riscv.MnADDI, riscv.MnFCVTDL, riscv.MnFADDD,
		riscv.MnFMULD, riscv.MnFMADDD, riscv.MnFSQRTD, riscv.MnFSGNJD, riscv.MnFCVTLD}
	if len(mns) != len(want) {
		t.Fatalf("mnemonics = %v", mns)
	}
	for i := range want {
		if mns[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, mns[i], want[i])
		}
	}
}

func TestAMOAndCSR(t *testing.T) {
	src := `
	.text
_start:
	lr.w t0, (a0)
	sc.w t1, t0, (a0)
	amoadd.d t2, t3, (a1)
	csrr t4, cycle
	csrrw t5, 0x300, t6
	rdinstret s0
	fence
	fence.i
`
	f := mustAssemble(t, src, Options{})
	insts := decodeText(t, f)
	want := []riscv.Mnemonic{riscv.MnLRW, riscv.MnSCW, riscv.MnAMOADDD,
		riscv.MnCSRRS, riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnFENCE, riscv.MnFENCEI}
	for i, in := range insts {
		if in.Mn != want[i] {
			t.Errorf("inst %d = %v, want %v", i, in.Mn, want[i])
		}
	}
	if insts[3].CSR != 0xC00 {
		t.Errorf("cycle csr = %#x", insts[3].CSR)
	}
	if insts[5].CSR != 0xC02 {
		t.Errorf("instret csr = %#x", insts[5].CSR)
	}
}

func TestWholeFileRoundTrip(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	la a0, msg
	li a1, 6
	call work
	li a7, 93
	ecall
	.type work, @function
work:
	addi sp, sp, -16
	sd ra, 8(sp)
	ld ra, 8(sp)
	addi sp, sp, 16
	ret
	.size work, .-work
	.data
msg:
	.asciz "hello"
`
	f := mustAssemble(t, src, Options{})
	raw, err := f.Write()
	if err != nil {
		t.Fatal(err)
	}
	g, err := elfrv.Read(raw)
	if err != nil {
		t.Fatal(err)
	}
	if g.Entry != f.Entry {
		t.Errorf("entry %#x != %#x", g.Entry, f.Entry)
	}
	w, ok := g.Symbol("work")
	if !ok || w.Type != elfrv.STTFunc {
		t.Errorf("work symbol = %+v", w)
	}
	msg, err := g.ReadAt(mustSym(t, g, "msg"), 6)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "hello\x00" {
		t.Errorf("msg = %q", msg)
	}
}

func mustSym(t *testing.T, f *elfrv.File, name string) uint64 {
	t.Helper()
	s, ok := f.Symbol(name)
	if !ok {
		t.Fatalf("no symbol %s", name)
	}
	return s.Value
}

func TestTwoByteFunction(t *testing.T) {
	// A function consisting of a single compressed ret is 2 bytes long —
	// the degenerate case from Section 3.1.2 that forces trap-based patching.
	src := `
	.text
	.globl tiny
	.type tiny, @function
tiny:
	ret
	.size tiny, .-tiny
	.globl _start
_start:
	call tiny
`
	f := mustAssemble(t, src, Options{})
	sym, _ := f.Symbol("tiny")
	if sym.Size != 2 {
		t.Errorf("tiny size = %d, want 2", sym.Size)
	}
}
