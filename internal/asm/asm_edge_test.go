package asm

import (
	"strings"
	"testing"

	"rvdyn/internal/elfrv"
	"rvdyn/internal/riscv"
)

func TestCustomSection(t *testing.T) {
	f := mustAssemble(t, `
	.section .mydata
blob:
	.word 0x1234
	.text
_start:
	nop
`, Options{})
	s := f.Section(".mydata")
	if s == nil {
		t.Fatal("custom section missing")
	}
	if s.Flags&elfrv.SHFWrite == 0 || s.Flags&elfrv.SHFAlloc == 0 {
		t.Errorf("custom section flags = %#x", s.Flags)
	}
}

func TestP2AlignAndBalign(t *testing.T) {
	f := mustAssemble(t, `
	.data
	.byte 1
	.p2align 3
a8:
	.byte 2
	.balign 16
a16:
	.byte 3
	.text
_start:
	nop
`, Options{})
	s1, _ := f.Symbol("a8")
	s2, _ := f.Symbol("a16")
	if s1.Value%8 != 0 {
		t.Errorf("a8 at %#x", s1.Value)
	}
	if s2.Value%16 != 0 {
		t.Errorf("a16 at %#x", s2.Value)
	}
}

func TestCharLiteralAndExpressions(t *testing.T) {
	f := mustAssemble(t, `
	.equ X, 'A'
	.equ Y, X+1
	.equ Z, 2*3+4
	.text
_start:
	li a0, X
	li a1, Y
	li a2, Z
`, Options{})
	insts := decodeText(t, f)
	if insts[0].Imm != 'A' || insts[1].Imm != 'B' || insts[2].Imm != 10 {
		t.Errorf("imms = %d %d %d", insts[0].Imm, insts[1].Imm, insts[2].Imm)
	}
}

func TestSymbolPlusAddend(t *testing.T) {
	f := mustAssemble(t, `
	.data
arr:
	.dword 1, 2, 3
	.text
_start:
	la t0, arr+16
`, Options{NoCompress: true})
	sym, _ := f.Symbol("arr")
	insts := decodeText(t, f)
	got := insts[0].Imm<<12 + insts[1].Imm
	if uint64(got) != sym.Value+16 {
		t.Errorf("la arr+16 = %#x, want %#x", got, sym.Value+16)
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown directive", "\t.bogus 1\n"},
		{"bad align", "\t.align 99\n"},
		{"balign not power", "\t.balign 12\n"},
		{"bad string", "\t.asciz hello\n"},
		{"size without expr", "\t.size foo\n"},
		{"type bad kind", "\t.type foo, @zebra\n"},
		{"negative zero", "\t.zero -1\n"},
		{"bad double", "\t.double banana\n"},
		{"section missing name", "\t.section\n"},
		{"equ missing value", "\t.equ X\n"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src, Options{}); err == nil {
			t.Errorf("%s: assembled without error", c.name)
		}
	}
}

func TestOperandErrors(t *testing.T) {
	cases := []string{
		"\tlw a0, a1\n",             // load without memory operand
		"\tsw a0, a1\n",             // store without memory operand
		"\tbeq a0, 5, 8\n",          // branch with imm rs2
		"\tjalr 5\n",                // jalr with immediate only
		"\tla a0, 5\n",              // la with literal
		"\tcsrrw a0, 0x10000, a1\n", // handled? csr too big -> encode range
		"\tamoadd.w a0, a1, a2\n",   // amo without (mem)
		"\tfmadd.d ft0, ft1, ft2\n", // fma needs 4 ops
		"\tlr.w a0, a1\n",           // lr without (mem)
		"\taddi a0, a1, %hi\n",      // malformed reloc
		"\tbeqz a0\n",               // pseudo operand count
		"\tcall\n",                  // call without target
		"\tcsrr a0, notacsr\n",      // bad csr name
		"\trdcycle 5\n",             // non-register
	}
	for _, src := range cases {
		full := "\t.text\n_start:\n" + src
		if _, err := Assemble(full, Options{}); err == nil {
			t.Errorf("%q: assembled without error", strings.TrimSpace(src))
		}
	}
}

func TestLabelOnSameLine(t *testing.T) {
	f := mustAssemble(t, `
	.text
_start: nop
here: there: ret
`, Options{})
	if _, ok := f.Symbol("here"); !ok {
		t.Error("here missing")
	}
	h, _ := f.Symbol("here")
	th, _ := f.Symbol("there")
	if h.Value != th.Value {
		t.Error("stacked labels differ")
	}
}

func TestBranchRangeError(t *testing.T) {
	// A branch to a label beyond ±4 KiB must fail at encode.
	var b strings.Builder
	b.WriteString("\t.text\n_start:\n\tbeq a0, a1, far\n")
	for i := 0; i < 2000; i++ {
		b.WriteString("\tnop\n")
	}
	b.WriteString("far:\n\tret\n")
	if _, err := Assemble(b.String(), Options{NoCompress: true}); err == nil {
		t.Error("out-of-range branch assembled")
	}
}

func TestTextBaseOption(t *testing.T) {
	f := mustAssemble(t, "\t.text\n_start:\n\tnop\n", Options{TextBase: 0x40000})
	if f.Entry != 0x40000 {
		t.Errorf("entry = %#x", f.Entry)
	}
	if s := f.Section(".text"); s.Addr != 0x40000 {
		t.Errorf(".text at %#x", s.Addr)
	}
}

func TestFenceVariants(t *testing.T) {
	f := mustAssemble(t, `
	.text
_start:
	fence
	fence.i
`, Options{})
	insts := decodeText(t, f)
	if insts[0].Mn != riscv.MnFENCE || insts[1].Mn != riscv.MnFENCEI {
		t.Errorf("fences = %v %v", insts[0].Mn, insts[1].Mn)
	}
	if insts[0].Imm != 0x0ff {
		t.Errorf("fence pred/succ = %#x, want iorw,iorw", insts[0].Imm)
	}
}

func TestWordDataWithNegatives(t *testing.T) {
	f := mustAssemble(t, `
	.data
v:
	.half -2
	.word -3
	.text
_start:
	nop
`, Options{})
	d := f.Section(".data").Data
	if d[0] != 0xfe || d[1] != 0xff {
		t.Errorf("half -2 = % x", d[:2])
	}
	if d[2] != 0xfd || d[5] != 0xff {
		t.Errorf("word -3 = % x", d[2:6])
	}
}
