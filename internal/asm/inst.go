package asm

import (
	"strconv"
	"strings"

	"rvdyn/internal/riscv"
)

// operand is a parsed instruction operand.
type operand struct {
	isReg bool
	reg   riscv.Reg
	val   int64
	ref   *symRef // non-nil for symbolic immediates
	isMem bool
	base  riscv.Reg // for off(base)
}

func (a *assembler) parseReg(s string) (riscv.Reg, error) {
	r, ok := riscv.LookupReg(strings.TrimSpace(s))
	if !ok {
		return riscv.RegNone, a.errf("bad register %q", s)
	}
	return r, nil
}

// parseOperand classifies one operand string.
func (a *assembler) parseOperand(s string) (operand, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return operand{}, a.errf("empty operand")
	}
	// off(base) memory form, including "(base)" and "%lo(sym)(base)".
	if strings.HasSuffix(s, ")") {
		if i := strings.LastIndexByte(s[:len(s)-1], '('); i >= 0 {
			inner := s[i+1 : len(s)-1]
			if r, ok := riscv.LookupReg(strings.TrimSpace(inner)); ok {
				offStr := strings.TrimSpace(s[:i])
				var op operand
				op.isMem = true
				op.base = r
				if offStr == "" {
					return op, nil
				}
				off, err := a.parseImm(offStr)
				if err != nil {
					return operand{}, err
				}
				op.val, op.ref = off.val, off.ref
				return op, nil
			}
		}
	}
	if r, ok := riscv.LookupReg(s); ok {
		return operand{isReg: true, reg: r}, nil
	}
	return a.parseImm(s)
}

// parseImm parses an immediate: %hi(sym), %lo(sym), sym(+addend), or a
// constant expression.
func (a *assembler) parseImm(s string) (operand, error) {
	s = strings.TrimSpace(s)
	for _, m := range []struct {
		prefix string
		mod    modKind
	}{{"%hi(", modHi}, {"%lo(", modLo}} {
		if strings.HasPrefix(s, m.prefix) && strings.HasSuffix(s, ")") {
			inner := s[len(m.prefix) : len(s)-1]
			sym, add, ok := a.symPlusAddend(inner)
			if !ok {
				return operand{}, a.errf("bad %s operand %q", m.prefix[:3], s)
			}
			return operand{ref: &symRef{sym: sym, addend: add, mod: m.mod}}, nil
		}
	}
	if sym, add, ok := a.symPlusAddend(s); ok {
		return operand{ref: &symRef{sym: sym, addend: add, mod: modNone}}, nil
	}
	v, err := a.constExpr(s)
	if err != nil {
		return operand{}, err
	}
	return operand{val: v}, nil
}

// emit appends one instruction item, deciding compression.
func (a *assembler) emit(inst riscv.Inst, ref *symRef) {
	it := &item{kind: itemInst, inst: inst, ref: ref, size: 4, line: a.line}
	if a.compress && ref == nil {
		if _, ok := riscv.Compress(inst); ok {
			it.inst.Compressed = true
			it.size = 2
		}
	}
	a.usedExt |= inst.Mn.Ext()
	if it.inst.Compressed {
		a.usedExt |= riscv.ExtC
	}
	a.cur.items = append(a.cur.items, it)
}

func (a *assembler) doInstruction(s string) error {
	mnStr := s
	rest := ""
	if i := strings.IndexAny(s, " \t"); i > 0 {
		mnStr, rest = s[:i], strings.TrimSpace(s[i+1:])
	}
	mnStr = strings.ToLower(mnStr)
	opStrs := splitOperands(rest)

	if done, err := a.tryPseudo(mnStr, opStrs); done || err != nil {
		return err
	}

	mn, ok := riscv.LookupMnemonic(mnStr)
	if !ok {
		return a.errf("unknown instruction %q", mnStr)
	}
	if !a.opts.Arch.Has(mn.Ext()) {
		return a.errf("instruction %s requires extension outside target %v", mnStr, a.opts.Arch)
	}

	// A trailing rounding-mode name on an FP instruction sets the rm field.
	rm := riscv.RMDyn
	if len(opStrs) > 0 && riscv.HasRoundingMode(mn) {
		if v, ok := riscv.LookupRoundingMode(strings.ToLower(opStrs[len(opStrs)-1])); ok {
			rm = v
			opStrs = opStrs[:len(opStrs)-1]
		}
	}

	ops := make([]operand, len(opStrs))
	for i, os := range opStrs {
		// The CSR operand position accepts CSR names.
		if isCSRMn(mn) && i == 1 {
			if num, ok := csrByName[strings.ToLower(os)]; ok {
				ops[i] = operand{val: int64(num)}
				continue
			}
		}
		op, err := a.parseOperand(os)
		if err != nil {
			return err
		}
		ops[i] = op
	}

	inst := riscv.Inst{Mn: mn, Rd: riscv.RegNone, Rs1: riscv.RegNone,
		Rs2: riscv.RegNone, Rs3: riscv.RegNone, RM: rm}
	var ref *symRef

	need := func(n int) error {
		if len(ops) != n {
			return a.errf("%s expects %d operands, got %d", mnStr, n, len(ops))
		}
		return nil
	}
	reg := func(i int) (riscv.Reg, error) {
		if !ops[i].isReg {
			return riscv.RegNone, a.errf("%s operand %d must be a register", mnStr, i+1)
		}
		return ops[i].reg, nil
	}

	switch mn.Cat() {
	case riscv.CatLoad:
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if !ops[1].isMem {
			return a.errf("%s expects off(base) operand", mnStr)
		}
		inst.Rd, inst.Rs1, inst.Imm, ref = rd, ops[1].base, ops[1].val, ops[1].ref
	case riscv.CatStore:
		if err := need(2); err != nil {
			return err
		}
		rs2, err := reg(0)
		if err != nil {
			return err
		}
		if !ops[1].isMem {
			return a.errf("%s expects off(base) operand", mnStr)
		}
		inst.Rs2, inst.Rs1, inst.Imm, ref = rs2, ops[1].base, ops[1].val, ops[1].ref
	case riscv.CatBranch:
		if err := need(3); err != nil {
			return err
		}
		rs1, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		inst.Rs1, inst.Rs2 = rs1, rs2
		inst.Imm, ref = ops[2].val, branchRef(ops[2])
	case riscv.CatJAL:
		switch len(ops) {
		case 1:
			inst.Rd = riscv.RegRA
			inst.Imm, ref = ops[0].val, branchRef(ops[0])
		case 2:
			rd, err := reg(0)
			if err != nil {
				return err
			}
			inst.Rd = rd
			inst.Imm, ref = ops[1].val, branchRef(ops[1])
		default:
			return a.errf("jal expects 1 or 2 operands")
		}
	case riscv.CatJALR:
		switch len(ops) {
		case 1:
			if ops[0].isMem {
				inst.Rd, inst.Rs1, inst.Imm = riscv.RegRA, ops[0].base, ops[0].val
			} else {
				rs1, err := reg(0)
				if err != nil {
					return err
				}
				inst.Rd, inst.Rs1 = riscv.RegRA, rs1
			}
		case 2:
			rd, err := reg(0)
			if err != nil {
				return err
			}
			inst.Rd = rd
			if ops[1].isMem {
				inst.Rs1, inst.Imm = ops[1].base, ops[1].val
			} else if ops[1].isReg {
				inst.Rs1 = ops[1].reg
			} else {
				return a.errf("jalr expects register or off(base)")
			}
		case 3:
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs1, err := reg(1)
			if err != nil {
				return err
			}
			inst.Rd, inst.Rs1, inst.Imm = rd, rs1, ops[2].val
		default:
			return a.errf("jalr expects 1-3 operands")
		}
	case riscv.CatAMO:
		if mn == riscv.MnLRW || mn == riscv.MnLRD {
			if err := need(2); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			if !ops[1].isMem {
				return a.errf("%s expects (base) operand", mnStr)
			}
			inst.Rd, inst.Rs1 = rd, ops[1].base
		} else {
			if err := need(3); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs2, err := reg(1)
			if err != nil {
				return err
			}
			if !ops[2].isMem {
				return a.errf("%s expects (base) operand", mnStr)
			}
			inst.Rd, inst.Rs2, inst.Rs1 = rd, rs2, ops[2].base
		}
	case riscv.CatFence:
		// fence / fence.i; operand lists like "iorw, iorw" are accepted and
		// mapped to the full-barrier encoding.
		if mn == riscv.MnFENCE {
			inst.Imm = 0x0ff
		}
	case riscv.CatSystem:
		switch mn {
		case riscv.MnECALL, riscv.MnEBREAK:
			// no operands
		case riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC:
			if err := need(3); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			rs1, err := reg(2)
			if err != nil {
				return err
			}
			if ops[1].val < 0 || ops[1].val > 0xfff {
				return a.errf("CSR number %d out of range [0,0xfff]", ops[1].val)
			}
			inst.Rd, inst.Rs1, inst.CSR = rd, rs1, uint16(ops[1].val)
		default: // csr immediate forms
			if err := need(3); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			inst.Rd, inst.CSR, inst.Imm = rd, uint16(ops[1].val), ops[2].val
		}
	default: // CatArith
		switch mn {
		case riscv.MnLUI, riscv.MnAUIPC:
			if err := need(2); err != nil {
				return err
			}
			rd, err := reg(0)
			if err != nil {
				return err
			}
			inst.Rd = rd
			inst.Imm, ref = ops[1].val, ops[1].ref
		default:
			switch len(ops) {
			case 2: // unary float forms: fsqrt, fcvt, fmv, fclass
				if !riscv.UnaryRegForm(mn) {
					return a.errf("%s expects 3 operands", mnStr)
				}
				rd, err := reg(0)
				if err != nil {
					return err
				}
				rs1, err := reg(1)
				if err != nil {
					return err
				}
				inst.Rd, inst.Rs1 = rd, rs1
			case 3:
				if riscv.IsFMA(mn) {
					return a.errf("%s expects 4 operands", mnStr)
				}
				rd, err := reg(0)
				if err != nil {
					return err
				}
				rs1, err := reg(1)
				if err != nil {
					return err
				}
				inst.Rd, inst.Rs1 = rd, rs1
				if ops[2].isReg {
					inst.Rs2 = ops[2].reg
				} else {
					inst.Imm, ref = ops[2].val, ops[2].ref
				}
			case 4: // fused multiply-add
				var regs [4]riscv.Reg
				for i := 0; i < 4; i++ {
					r, err := reg(i)
					if err != nil {
						return err
					}
					regs[i] = r
				}
				inst.Rd, inst.Rs1, inst.Rs2, inst.Rs3 = regs[0], regs[1], regs[2], regs[3]
			default:
				return a.errf("%s: unsupported operand count %d", mnStr, len(ops))
			}
		}
	}
	a.emit(inst, ref)
	return nil
}

// branchRef turns an operand into a pc-relative symbol reference when the
// operand was symbolic; literal operands are raw byte offsets.
func branchRef(op operand) *symRef {
	if op.ref == nil {
		return nil
	}
	r := *op.ref
	r.mod = modPCRel
	return &r
}

func isCSRMn(mn riscv.Mnemonic) bool {
	switch mn {
	case riscv.MnCSRRW, riscv.MnCSRRS, riscv.MnCSRRC,
		riscv.MnCSRRWI, riscv.MnCSRRSI, riscv.MnCSRRCI:
		return true
	}
	return false
}

var csrByName = map[string]uint16{
	"cycle": 0xC00, "time": 0xC01, "instret": 0xC02,
	"fflags": 0x001, "frm": 0x002, "fcsr": 0x003,
}

// tryPseudo expands the standard pseudo-instructions. It reports whether the
// mnemonic was handled.
func (a *assembler) tryPseudo(mn string, ops []string) (bool, error) {
	R := riscv.RegNone
	_ = R
	regOp := func(i int) (riscv.Reg, error) { return a.parseReg(ops[i]) }
	need := func(n int) error {
		if len(ops) != n {
			return a.errf("%s expects %d operands, got %d", mn, n, len(ops))
		}
		return nil
	}
	ji := func(m riscv.Mnemonic, rd, rs1, rs2 riscv.Reg, imm int64, ref *symRef) {
		a.emit(riscv.Inst{Mn: m, Rd: rd, Rs1: rs1, Rs2: rs2, Rs3: riscv.RegNone,
			Imm: imm, RM: riscv.RMDyn}, ref)
	}

	switch mn {
	case "nop":
		ji(riscv.MnADDI, riscv.X0, riscv.X0, riscv.RegNone, 0, nil)
	case "li":
		if err := need(2); err != nil {
			return true, err
		}
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		v, err := a.constExpr(ops[1])
		if err != nil {
			return true, err
		}
		a.materialize(rd, v)
	case "la", "lla":
		if err := need(2); err != nil {
			return true, err
		}
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		sym, add, ok := a.symPlusAddend(ops[1])
		if !ok {
			return true, a.errf("la expects a symbol, got %q", ops[1])
		}
		ji(riscv.MnLUI, rd, riscv.RegNone, riscv.RegNone, 0, &symRef{sym: sym, addend: add, mod: modHi})
		ji(riscv.MnADDI, rd, rd, riscv.RegNone, 0, &symRef{sym: sym, addend: add, mod: modLo})
	case "mv":
		if err := need(2); err != nil {
			return true, err
		}
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		// mv expands to "add rd, x0, rs" (the c.mv form), matching what gcc
		// emits so the result stays compressible.
		ji(riscv.MnADD, rd, riscv.X0, rs, 0, nil)
	case "not":
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		ji(riscv.MnXORI, rd, rs, riscv.RegNone, -1, nil)
	case "neg":
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		ji(riscv.MnSUB, rd, riscv.X0, rs, 0, nil)
	case "negw":
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		ji(riscv.MnSUBW, rd, riscv.X0, rs, 0, nil)
	case "sext.w":
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		ji(riscv.MnADDIW, rd, rs, riscv.RegNone, 0, nil)
	case "seqz":
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		ji(riscv.MnSLTIU, rd, rs, riscv.RegNone, 1, nil)
	case "snez":
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		ji(riscv.MnSLTU, rd, riscv.X0, rs, 0, nil)
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return true, err
		}
		rs, err := regOp(0)
		if err != nil {
			return true, err
		}
		t, err := a.parseImm(ops[1])
		if err != nil {
			return true, err
		}
		ref := branchRef(t)
		switch mn {
		case "beqz":
			ji(riscv.MnBEQ, riscv.RegNone, rs, riscv.X0, t.val, ref)
		case "bnez":
			ji(riscv.MnBNE, riscv.RegNone, rs, riscv.X0, t.val, ref)
		case "blez":
			ji(riscv.MnBGE, riscv.RegNone, riscv.X0, rs, t.val, ref)
		case "bgez":
			ji(riscv.MnBGE, riscv.RegNone, rs, riscv.X0, t.val, ref)
		case "bltz":
			ji(riscv.MnBLT, riscv.RegNone, rs, riscv.X0, t.val, ref)
		case "bgtz":
			ji(riscv.MnBLT, riscv.RegNone, riscv.X0, rs, t.val, ref)
		}
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return true, err
		}
		r1, err := regOp(0)
		if err != nil {
			return true, err
		}
		r2, err := regOp(1)
		if err != nil {
			return true, err
		}
		t, err := a.parseImm(ops[2])
		if err != nil {
			return true, err
		}
		ref := branchRef(t)
		switch mn {
		case "bgt":
			ji(riscv.MnBLT, riscv.RegNone, r2, r1, t.val, ref)
		case "ble":
			ji(riscv.MnBGE, riscv.RegNone, r2, r1, t.val, ref)
		case "bgtu":
			ji(riscv.MnBLTU, riscv.RegNone, r2, r1, t.val, ref)
		case "bleu":
			ji(riscv.MnBGEU, riscv.RegNone, r2, r1, t.val, ref)
		}
	case "j":
		if err := need(1); err != nil {
			return true, err
		}
		t, err := a.parseImm(ops[0])
		if err != nil {
			return true, err
		}
		ji(riscv.MnJAL, riscv.X0, riscv.RegNone, riscv.RegNone, t.val, branchRef(t))
	case "jr":
		if err := need(1); err != nil {
			return true, err
		}
		rs, err := regOp(0)
		if err != nil {
			return true, err
		}
		ji(riscv.MnJALR, riscv.X0, rs, riscv.RegNone, 0, nil)
	case "ret":
		ji(riscv.MnJALR, riscv.X0, riscv.RegRA, riscv.RegNone, 0, nil)
	case "call":
		if err := need(1); err != nil {
			return true, err
		}
		t, err := a.parseImm(ops[0])
		if err != nil {
			return true, err
		}
		ji(riscv.MnJAL, riscv.RegRA, riscv.RegNone, riscv.RegNone, t.val, branchRef(t))
	case "tail":
		if err := need(1); err != nil {
			return true, err
		}
		t, err := a.parseImm(ops[0])
		if err != nil {
			return true, err
		}
		ji(riscv.MnJAL, riscv.X0, riscv.RegNone, riscv.RegNone, t.val, branchRef(t))
	case "callfar", "tailfar":
		// The multi-instruction auipc+jalr sequences from Section 3.2.3:
		// callfar links through ra; tailfar clobbers t1 and does not link.
		if err := need(1); err != nil {
			return true, err
		}
		sym, add, ok := a.symPlusAddend(ops[0])
		if !ok {
			return true, a.errf("%s expects a symbol", mn)
		}
		scratch, link := riscv.RegRA, riscv.RegRA
		if mn == "tailfar" {
			scratch, link = riscv.RegT1, riscv.X0
		}
		hi := &symRef{sym: sym, addend: add, mod: modPCRelHi}
		a.emit(riscv.Inst{Mn: riscv.MnAUIPC, Rd: scratch, Rs1: riscv.RegNone,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone}, hi)
		hiItem := a.cur.items[len(a.cur.items)-1]
		lo := &symRef{sym: sym, addend: add, mod: modPCRelLo, pair: hiItem}
		a.emit(riscv.Inst{Mn: riscv.MnJALR, Rd: link, Rs1: scratch,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone}, lo)
	case "fmv.d", "fabs.d", "fneg.d", "fmv.s", "fabs.s", "fneg.s":
		if err := need(2); err != nil {
			return true, err
		}
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		m := map[string]riscv.Mnemonic{
			"fmv.d": riscv.MnFSGNJD, "fabs.d": riscv.MnFSGNJXD, "fneg.d": riscv.MnFSGNJND,
			"fmv.s": riscv.MnFSGNJS, "fabs.s": riscv.MnFSGNJXS, "fneg.s": riscv.MnFSGNJNS,
		}[mn]
		ji(m, rd, rs, rs, 0, nil)
	case "csrr":
		if err := need(2); err != nil {
			return true, err
		}
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		csr, err := a.csrNum(ops[1])
		if err != nil {
			return true, err
		}
		a.emit(riscv.Inst{Mn: riscv.MnCSRRS, Rd: rd, Rs1: riscv.X0,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, CSR: csr}, nil)
	case "csrw":
		if err := need(2); err != nil {
			return true, err
		}
		csr, err := a.csrNum(ops[0])
		if err != nil {
			return true, err
		}
		rs, err := regOp(1)
		if err != nil {
			return true, err
		}
		a.emit(riscv.Inst{Mn: riscv.MnCSRRW, Rd: riscv.X0, Rs1: rs,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, CSR: csr}, nil)
	case "rdcycle", "rdtime", "rdinstret":
		if err := need(1); err != nil {
			return true, err
		}
		rd, err := regOp(0)
		if err != nil {
			return true, err
		}
		csr := map[string]uint16{"rdcycle": 0xC00, "rdtime": 0xC01, "rdinstret": 0xC02}[mn]
		a.emit(riscv.Inst{Mn: riscv.MnCSRRS, Rd: rd, Rs1: riscv.X0,
			Rs2: riscv.RegNone, Rs3: riscv.RegNone, CSR: csr}, nil)
	default:
		return false, nil
	}
	return true, nil
}

func (a *assembler) csrNum(s string) (uint16, error) {
	if n, ok := csrByName[strings.ToLower(strings.TrimSpace(s))]; ok {
		return n, nil
	}
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 32)
	if err != nil || v < 0 || v > 0xfff {
		return 0, a.errf("bad CSR %q", s)
	}
	return uint16(v), nil
}

// materialize emits the li expansion: the lui/addi(w)/slli sequence the
// paper's CodeGenAPI section describes for loading immediates that have no
// single-instruction form.
func (a *assembler) materialize(rd riscv.Reg, v int64) {
	ji := func(m riscv.Mnemonic, rd, rs1 riscv.Reg, imm int64) {
		a.emit(riscv.Inst{Mn: m, Rd: rd, Rs1: rs1, Rs2: riscv.RegNone,
			Rs3: riscv.RegNone, Imm: imm}, nil)
	}
	if v >= -2048 && v <= 2047 {
		ji(riscv.MnADDI, rd, riscv.X0, v)
		return
	}
	if v >= -(1<<31) && v < 1<<31 {
		hi := (v + 0x800) >> 12
		lo := v - hi<<12
		// Sign-extend hi to the 20-bit U-type immediate domain.
		hi = hi << 44 >> 44
		ji(riscv.MnLUI, rd, riscv.RegNone, hi)
		if lo != 0 {
			ji(riscv.MnADDIW, rd, rd, lo)
		}
		return
	}
	// Wide constant: build the upper part recursively, then shift in 11-bit
	// chunks (11 keeps every addi immediate positive-safe after shifts).
	lo12 := v << 52 >> 52
	upper := (v - lo12) >> 12
	a.materialize(rd, upper)
	ji(riscv.MnSLLI, rd, rd, 12)
	if lo12 != 0 {
		ji(riscv.MnADDI, rd, rd, lo12)
	}
}
