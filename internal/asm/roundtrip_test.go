package asm

import (
	"fmt"
	"testing"

	"rvdyn/internal/riscv"
)

// rtTemplates are candidate operand shapes for building one representative
// instruction per mnemonic. The register bank in the template does not have
// to match the instruction (only 5-bit field numbers are encoded); what
// matters is that immediates satisfy every form's range/alignment rules and
// that the fixed-field instructions (fence) carry their canonical operands.
func rtTemplates(mn riscv.Mnemonic) []riscv.Inst {
	base := riscv.Inst{
		Mn: mn, Rd: riscv.X5, Rs1: riscv.X6, Rs2: riscv.X7, Rs3: riscv.X28,
		Imm: 16, CSR: 0xc00, RM: riscv.RMDyn,
	}
	switch mn {
	case riscv.MnFENCE:
		// The bare "fence" spelling always assembles to the full barrier.
		base.Imm = 0x0ff
	case riscv.MnFENCEI:
		base.Imm = 0
	}
	return []riscv.Inst{base}
}

// TestRoundTrip32 proves, for every defined mnemonic, that the encoder, the
// decoder, the disassembly printer, and the assembler agree: encode a
// representative instruction, decode it, print it, assemble the printed text
// (compression off), and demand the identical 32-bit word back.
func TestRoundTrip32(t *testing.T) {
	covered := 0
	for m := 1; m < riscv.NumMnemonics(); m++ {
		mn := riscv.Mnemonic(m)
		var d1 riscv.Inst
		var word uint32
		found := false
		for _, tmpl := range rtTemplates(mn) {
			w, err := riscv.Encode(tmpl)
			if err != nil {
				continue
			}
			d, err := riscv.Decode([]byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}, 0)
			if err != nil || d.Mn != mn {
				continue
			}
			d1, word, found = d, w, true
			break
		}
		if !found {
			t.Errorf("%v: no template encodes and decodes back", mn)
			continue
		}
		covered++

		src := fmt.Sprintf("\t.text\n\t.globl _start\n_start:\n\t%s\n", d1)
		f, err := Assemble(src, Options{Arch: riscv.RVA23Subset, NoCompress: true, NoAttributes: true})
		if err != nil {
			t.Errorf("%v: assembling %q: %v", mn, d1.String(), err)
			continue
		}
		sec := f.Section(".text")
		if sec == nil || len(sec.Data) != 4 {
			t.Errorf("%v: %q assembled to %d bytes, want 4", mn, d1.String(), len(sec.Data))
			continue
		}
		d2, err := riscv.Decode(sec.Data, sec.Addr)
		if err != nil {
			t.Errorf("%v: decoding assembled bytes: %v", mn, err)
			continue
		}
		if d2.Raw != word {
			t.Errorf("%v: %q assembled to %#08x, encoder produced %#08x", mn, d1.String(), d2.Raw, word)
			continue
		}
		if !sameOperands(d1, d2) {
			t.Errorf("%v: operand mismatch after round trip:\n  encoded:   %+v\n  assembled: %+v", mn, d1, d2)
		}
	}
	if covered < riscv.NumMnemonics()-1 {
		t.Errorf("round-tripped %d of %d mnemonics", covered, riscv.NumMnemonics()-1)
	}
	t.Logf("round-tripped %d mnemonics through encode -> decode -> print -> assemble", covered)
}

func sameOperands(a, b riscv.Inst) bool {
	return a.Mn == b.Mn && a.Rd == b.Rd && a.Rs1 == b.Rs1 && a.Rs2 == b.Rs2 &&
		a.Rs3 == b.Rs3 && a.Imm == b.Imm && a.CSR == b.CSR && a.RM == b.RM &&
		a.Aq == b.Aq && a.Rl == b.Rl
}

// rvcTemplates are operand shapes that fit the RVC sub-formats: x8-x15
// (s0/a0..a5) and f8-f15 register windows, rd==rs1 destructive ALU forms,
// scaled short immediates, and the sp-based load/store/addi idioms.
func rvcTemplates(mn riscv.Mnemonic) []riscv.Inst {
	sp, zero, ra := riscv.RegSP, riscv.X0, riscv.X1
	return []riscv.Inst{
		{Mn: mn, Rd: riscv.X8, Rs1: riscv.X8, Rs2: riscv.X9, Imm: 8}, // destructive ALU / c.addi
		{Mn: mn, Rd: riscv.X8, Rs1: riscv.X9, Imm: 8},                // c.lw/c.ld
		{Mn: mn, Rs1: riscv.X9, Rs2: riscv.X8, Imm: 8},               // c.sw/c.sd
		{Mn: mn, Rd: riscv.F8, Rs1: riscv.X9, Imm: 8},                // c.fld
		{Mn: mn, Rs1: riscv.X9, Rs2: riscv.F8, Imm: 8},               // c.fsd
		{Mn: mn, Rd: riscv.X8, Rs1: sp, Imm: 8},                      // c.lwsp/c.ldsp/c.addi4spn
		{Mn: mn, Rd: riscv.F8, Rs1: sp, Imm: 8},                      // c.fldsp
		{Mn: mn, Rs1: sp, Rs2: riscv.X8, Imm: 8},                     // c.swsp/c.sdsp
		{Mn: mn, Rs1: sp, Rs2: riscv.F8, Imm: 8},                     // c.fsdsp
		{Mn: mn, Rd: sp, Rs1: sp, Imm: 16},                           // c.addi16sp
		{Mn: mn, Rd: riscv.X8, Rs1: zero, Imm: 4},                    // c.li
		{Mn: mn, Rd: riscv.X8, Rs1: zero, Rs2: riscv.X9},             // c.mv
		{Mn: mn, Rd: riscv.X8, Rs1: riscv.X8, Rs2: riscv.X9, Imm: 0}, // c.add
		{Mn: mn, Rd: riscv.X8, Imm: 1},                               // c.lui
		{Mn: mn, Rs1: riscv.X8, Rs2: zero, Imm: 16},                  // c.beqz/c.bnez
		{Mn: mn, Rd: zero, Imm: 16},                                  // c.j
		{Mn: mn, Rd: zero, Rs1: riscv.X8, Imm: 0},                    // c.jr
		{Mn: mn, Rd: ra, Rs1: riscv.X8, Imm: 0},                      // c.jalr
		{Mn: mn},                                                     // c.ebreak / c.nop
	}
}

// TestRoundTripCompressed finds, for every mnemonic with an RVC form, a
// template that compresses; the 16-bit encoding must decode back to the same
// expansion, re-compress to the same halfword, and — printed and fed through
// the assembler with compression on — assemble back to those 2 bytes.
func TestRoundTripCompressed(t *testing.T) {
	compressed := map[riscv.Mnemonic]bool{}
	for m := 1; m < riscv.NumMnemonics(); m++ {
		mn := riscv.Mnemonic(m)
		for _, tmpl := range rvcTemplates(mn) {
			half, ok := riscv.Compress(tmpl)
			if !ok {
				continue
			}
			d, err := riscv.Decode([]byte{byte(half), byte(half >> 8)}, 0)
			if err != nil {
				t.Errorf("%v: compressed %#04x does not decode: %v", mn, half, err)
				continue
			}
			if d.Mn != mn || !d.Compressed || d.Len != 2 {
				t.Errorf("%v: compressed %#04x decoded to %v (compressed=%v len=%d)",
					mn, half, d.Mn, d.Compressed, d.Len)
				continue
			}
			re, ok := riscv.Compress(d)
			if !ok || re != half {
				t.Errorf("%v: recompress mismatch: %#04x -> %v -> %#04x", mn, half, d, re)
				continue
			}
			src := fmt.Sprintf("\t.text\n\t.globl _start\n_start:\n\t%s\n", d)
			f, err := Assemble(src, Options{Arch: riscv.RVA23Subset, NoAttributes: true})
			if err != nil {
				t.Errorf("%v: assembling %q: %v", mn, d.String(), err)
				continue
			}
			sec := f.Section(".text")
			if len(sec.Data) != 2 || sec.Data[0] != byte(half) || sec.Data[1] != byte(half>>8) {
				t.Errorf("%v: %q assembled to % x, want % x", mn, d.String(),
					sec.Data, []byte{byte(half), byte(half >> 8)})
				continue
			}
			compressed[mn] = true
			break
		}
	}
	// Every RV64GC compressed expansion class must be represented.
	want := []riscv.Mnemonic{
		riscv.MnADDI, riscv.MnADDIW, riscv.MnADD, riscv.MnSUB, riscv.MnAND,
		riscv.MnOR, riscv.MnXOR, riscv.MnANDI, riscv.MnSLLI, riscv.MnSRLI,
		riscv.MnSRAI, riscv.MnLW, riscv.MnLD, riscv.MnSW, riscv.MnSD,
		riscv.MnFLD, riscv.MnFSD, riscv.MnLUI, riscv.MnBEQ, riscv.MnBNE,
		riscv.MnJAL, riscv.MnJALR, riscv.MnADDW, riscv.MnSUBW, riscv.MnEBREAK,
	}
	for _, mn := range want {
		if !compressed[mn] {
			t.Errorf("no template produced a compressed form of %v", mn)
		}
	}
	t.Logf("compressed round trip covered %d mnemonics", len(compressed))
}
