package workload

import (
	"math"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/emu"
)

func runSource(t *testing.T, src string) *emu.CPU {
	t.Helper()
	f, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(200_000_000); r != emu.StopExit {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	return c
}

func TestMatmulCorrectness(t *testing.T) {
	n := 16
	f, err := BuildMatmul(n, 1, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != emu.StopExit {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	sym, ok := f.Symbol("mat_c")
	if !ok {
		t.Fatal("no mat_c symbol")
	}
	want := RefMatmul(n)
	for i := 0; i < n*n; i++ {
		raw, err := c.Mem.Read64(sym.Value + uint64(i*8))
		if err != nil {
			t.Fatal(err)
		}
		got := math.Float64frombits(raw)
		if got != want[i] {
			t.Fatalf("c[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestMatmulElapsedRecorded(t *testing.T) {
	f, err := BuildMatmul(8, 3, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := emu.New(f, emu.P550())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Run(0); r != emu.StopExit {
		t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
	}
	sym, _ := f.Symbol("elapsed_ns")
	ns, err := c.Mem.Read64(sym.Value)
	if err != nil {
		t.Fatal(err)
	}
	if ns == 0 {
		t.Error("elapsed_ns not recorded")
	}
	// The recorded app time must be at most the total virtual time.
	if ns > c.VirtualNanos() {
		t.Errorf("elapsed %d > total %d", ns, c.VirtualNanos())
	}
}

func TestJumpTableWorkload(t *testing.T) {
	c := runSource(t, JumpTableSource)
	if c.ExitCode != JumpTableExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, JumpTableExpected)
	}
}

func TestTailCallWorkload(t *testing.T) {
	c := runSource(t, TailCallSource)
	if c.ExitCode != TailCallExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, TailCallExpected)
	}
}

func TestFarCallWorkload(t *testing.T) {
	c := runSource(t, FarCallSource)
	if c.ExitCode != FarCallExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, FarCallExpected)
	}
}

func TestTinyFuncWorkload(t *testing.T) {
	c := runSource(t, TinyFuncSource)
	if c.ExitCode != TinyFuncExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, TinyFuncExpected)
	}
	f, err := asm.Assemble(TinyFuncSource, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sym, _ := f.Symbol("tiny")
	if sym.Size != 2 {
		t.Errorf("tiny size = %d, want 2 (compressed ret)", sym.Size)
	}
}

func TestFibWorkload(t *testing.T) {
	c := runSource(t, FibSource)
	if c.ExitCode != FibExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, FibExpected)
	}
}

func TestFramePointerWorkload(t *testing.T) {
	c := runSource(t, FramePointerSource)
	if c.ExitCode != FramePointerExpected {
		t.Errorf("exit = %d, want %d", c.ExitCode, FramePointerExpected)
	}
}

func TestMatmulDeterminism(t *testing.T) {
	// The virtual clock must be exactly reproducible run to run.
	var times [2]uint64
	for i := range times {
		f, err := BuildMatmul(8, 2, asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		c, err := emu.New(f, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		if r := c.Run(0); r != emu.StopExit {
			t.Fatalf("stopped: %v", r)
		}
		times[i] = c.VirtualNanos()
	}
	if times[0] != times[1] {
		t.Errorf("non-deterministic timing: %d vs %d", times[0], times[1])
	}
}

func TestMatmulNoCompressVariant(t *testing.T) {
	// The uncompressed build must compute the same matrix.
	n := 8
	for _, opts := range []asm.Options{{}, {NoCompress: true}} {
		f, err := BuildMatmul(n, 1, opts)
		if err != nil {
			t.Fatal(err)
		}
		c, err := emu.New(f, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		if r := c.Run(0); r != emu.StopExit {
			t.Fatalf("stopped: %v (%v)", r, c.LastTrap())
		}
		sym, _ := f.Symbol("mat_c")
		want := RefMatmul(n)
		raw, _ := c.Mem.Read64(sym.Value + uint64((n*n-1)*8))
		if math.Float64frombits(raw) != want[n*n-1] {
			t.Errorf("last element mismatch (opts %+v)", opts)
		}
	}
}

func TestRandomProgramDeterministicAndRunnable(t *testing.T) {
	if RandomProgram(3, 4) != RandomProgram(3, 4) {
		t.Fatal("RandomProgram not deterministic for equal seeds")
	}
	if RandomProgram(3, 4) == RandomProgram(4, 4) {
		t.Fatal("different seeds produced identical programs")
	}
	for seed := int64(0); seed < 8; seed++ {
		src := RandomProgram(seed, 3)
		f, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		c, err := emu.New(f, emu.P550())
		if err != nil {
			t.Fatal(err)
		}
		if r := c.Run(2_000_000); r != emu.StopExit {
			t.Fatalf("seed %d: stopped %v (%v)", seed, r, c.LastTrap())
		}
		if c.ExitCode < 0 || c.ExitCode > 255 {
			t.Errorf("seed %d: exit %d outside clamp", seed, c.ExitCode)
		}
	}
}
