// Package workload provides the assembly programs the experiments run.
//
// The central one is Matmul: the paper's Section 4.1 application — "a simple
// program that contains a function that performs a 100 x 100 matrix
// multiplication of double precision floating point numbers", called
// repeatedly in a loop from main, with clock_gettime sampled before and
// after the loop and the elapsed time recorded. The multiply function is
// written so its CFG has exactly 11 basic blocks, matching the paper, and a
// 100×100 run executes about 2 million basic blocks per call, also matching
// the paper.
//
// The remaining workloads exercise the control-flow shapes Section 3.2.3
// discusses: jump tables, tail calls (near and far auipc+jalr forms),
// multi-instruction far calls, and functions shorter than four bytes.
package workload

import (
	"fmt"

	"rvdyn/internal/asm"
	"rvdyn/internal/elfrv"
)

// MatmulN and MatmulReps are the paper's parameters.
const (
	MatmulN    = 100
	MatmulReps = 10
)

// MatmulSource returns the benchmark program for an n×n multiply called
// reps times. The symbol elapsed_ns receives the application-measured
// elapsed nanoseconds of the timed loop, and mat_c holds the result matrix.
func MatmulSource(n, reps int) string {
	return fmt.Sprintf(`
# Matrix-multiply benchmark (paper Section 4.1).
	.equ N, %d
	.equ REPS, %d

	.bss
	.globl mat_a
mat_a:	.zero N*N*8
	.globl mat_b
mat_b:	.zero N*N*8
	.globl mat_c
mat_c:	.zero N*N*8
	.data
	.globl elapsed_ns
	.type elapsed_ns, @object
elapsed_ns:
	.dword 0

	.text
	.globl _start
_start:
	call init_matrices
	addi sp, sp, -32
	# start = clock_gettime(CLOCK_MONOTONIC)
	li a0, 1
	mv a1, sp
	li a7, 113
	ecall
	ld s2, 0(sp)
	ld s3, 8(sp)
	li s4, REPS
reps_loop:
	la a0, mat_a
	la a1, mat_b
	la a2, mat_c
	li a3, N
	call multiply
	addi s4, s4, -1
	bnez s4, reps_loop
	# end = clock_gettime(CLOCK_MONOTONIC)
	li a0, 1
	mv a1, sp
	li a7, 113
	ecall
	ld s5, 0(sp)
	ld s6, 8(sp)
	sub s5, s5, s2
	li t0, 1000000000
	mul s5, s5, t0
	add s5, s5, s6
	sub s5, s5, s3
	la t1, elapsed_ns
	sd s5, 0(t1)
	addi sp, sp, 32
	li a0, 0
	li a7, 93
	ecall

# multiply(a0=A, a1=B, a2=C, a3=n): C = A*B, row-major doubles.
# Written to parse into exactly 11 basic blocks (paper Section 4.1).
	.globl multiply
	.type multiply, @function
multiply:
	blez a3, mm_done        # B1: degenerate-size guard
	li t0, 0                # B2: i = 0
mm_i:
	bge t0, a3, mm_done     # B3: outer loop condition
	li t1, 0                # B4: j = 0
mm_j:
	bge t1, a3, mm_i_inc    # B5: middle loop condition
	fcvt.d.l ft0, zero      # B6: acc = 0.0, k = 0, row base
	li t2, 0
	mul t3, t0, a3
	slli t3, t3, 3
	add t3, t3, a0
mm_k:
	bge t2, a3, mm_k_done   # B7: inner loop condition
	slli t4, t2, 3          # B8: acc += A[i][k] * B[k][j]
	add t4, t4, t3
	fld ft1, 0(t4)
	mul t5, t2, a3
	add t5, t5, t1
	slli t5, t5, 3
	add t5, t5, a1
	fld ft2, 0(t5)
	fmadd.d ft0, ft1, ft2, ft0
	addi t2, t2, 1
	j mm_k
mm_k_done:
	mul t6, t0, a3          # B9: C[i][j] = acc, j++
	add t6, t6, t1
	slli t6, t6, 3
	add t6, t6, a2
	fsd ft0, 0(t6)
	addi t1, t1, 1
	j mm_j
mm_i_inc:
	addi t0, t0, 1          # B10: i++
	j mm_i
mm_done:
	ret                     # B11
	.size multiply, .-multiply

# init_matrices: A[i][j] = (i+j) %% 7, B[i][j] = (i*j+1) %% 5, as doubles.
	.type init_matrices, @function
init_matrices:
	la t0, mat_a
	la t1, mat_b
	li t2, 0                # i
init_i:
	li t3, N
	bge t2, t3, init_done
	li t4, 0                # j
init_j:
	li t3, N
	bge t4, t3, init_i_inc
	# idx = (i*N + j) * 8
	li t3, N
	mul t5, t2, t3
	add t5, t5, t4
	slli t5, t5, 3
	# A value
	add t6, t2, t4
	li t3, 7
	rem t6, t6, t3
	fcvt.d.l ft0, t6
	add t6, t0, t5
	fsd ft0, 0(t6)
	# B value
	mul t6, t2, t4
	addi t6, t6, 1
	li t3, 5
	rem t6, t6, t3
	fcvt.d.l ft0, t6
	add t6, t1, t5
	fsd ft0, 0(t6)
	addi t4, t4, 1
	j init_j
init_i_inc:
	addi t2, t2, 1
	j init_i
init_done:
	ret
	.size init_matrices, .-init_matrices
`, n, reps)
}

// BuildMatmul assembles the matmul workload.
func BuildMatmul(n, reps int, opts asm.Options) (*elfrv.File, error) {
	return asm.Assemble(MatmulSource(n, reps), opts)
}

// RefMatmul computes the reference result of the workload's multiply for
// validating instrumented and uninstrumented runs.
func RefMatmul(n int) []float64 {
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a[i*n+j] = float64((i + j) % 7)
			b[i*n+j] = float64((i*j + 1) % 5)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for k := 0; k < n; k++ {
				acc += a[i*n+k] * b[k*n+j]
			}
			c[i*n+j] = acc
		}
	}
	return c
}

// JumpTableSource is a program whose dispatch function implements a dense
// switch through a bona fide jump table: a bounds check, an indexed load
// from .rodata, and an indirect jalr — the pattern ParseAPI's jump-table
// analysis must recover (Section 3.2.3, last classifier rule).
//
// It sums dispatch(i) for i in 0..5 (the out-of-range 5 takes the default
// arm) and exits with the total: 10+21+32+43+99 + 99 = in-program check.
const JumpTableSource = `
	.text
	.globl _start
_start:
	li s0, 0          # i
	li s1, 0          # sum
jt_loop:
	li t0, 6
	bge s0, t0, jt_done
	mv a0, s0
	call dispatch
	add s1, s1, a0
	addi s0, s0, 1
	j jt_loop
jt_done:
	mv a0, s1
	li a7, 93
	ecall

	.globl dispatch
	.type dispatch, @function
dispatch:
	li t0, 4
	bgeu a0, t0, case_default
	la t1, table
	slli t2, a0, 3
	add t1, t1, t2
	ld t3, 0(t1)
	jr t3
case0:
	li a0, 10
	ret
case1:
	li a0, 21
	ret
case2:
	li a0, 32
	ret
case3:
	li a0, 43
	ret
case_default:
	li a0, 99
	ret
	.size dispatch, .-dispatch

	.rodata
	.balign 8
table:
	.dword case0
	.dword case1
	.dword case2
	.dword case3
`

// JumpTableExpected is the exit code of JumpTableSource.
const JumpTableExpected = 10 + 21 + 32 + 43 + 99 + 99

// TailCallSource exercises near tail calls (jal x0 to another function) and
// far tail calls (the auipc+jalr t1 pair): Section 3.2.3's tail-call rule.
const TailCallSource = `
	.text
	.globl _start
_start:
	li a0, 5
	call f_outer
	li a7, 93
	ecall

	.globl f_outer
	.type f_outer, @function
f_outer:
	addi a0, a0, 1
	tail f_middle          # near tail call: jal x0, f_middle
	.size f_outer, .-f_outer

	.globl f_middle
	.type f_middle, @function
f_middle:
	slli a0, a0, 1
	tailfar f_inner        # far tail call: auipc t1 + jalr x0
	.size f_middle, .-f_middle

	.globl f_inner
	.type f_inner, @function
f_inner:
	addi a0, a0, 100
	ret
	.size f_inner, .-f_inner
`

// TailCallExpected is the exit code of TailCallSource: ((5+1)*2)+100.
const TailCallExpected = 112

// FarCallSource exercises the multi-instruction auipc+jalr call sequence
// that ParseAPI must fuse into a single call (Section 3.2.3).
const FarCallSource = `
	.text
	.globl _start
_start:
	li a0, 3
	callfar square         # auipc ra + jalr ra
	callfar square
	li a7, 93
	ecall

	.globl square
	.type square, @function
square:
	mul a0, a0, a0
	ret
	.size square, .-square
`

// FarCallExpected is the exit code of FarCallSource: (3^2)^2.
const FarCallExpected = 81

// TinyFuncSource contains a 2-byte function (a single compressed ret): the
// degenerate case of Section 3.1.2 where no jump instruction fits and the
// patcher must fall back to a trap.
const TinyFuncSource = `
	.text
	.globl _start
_start:
	li a0, 7
	call tiny
	call work
	li a7, 93
	ecall

	.globl tiny
	.type tiny, @function
tiny:
	ret
	.size tiny, .-tiny

	.globl work
	.type work, @function
work:
	addi a0, a0, 1
	ret
	.size work, .-work
`

// TinyFuncExpected is the exit code of TinyFuncSource.
const TinyFuncExpected = 8

// FibSource is a recursive workload with real stack frames, used by the
// stack-walking examples and tests. fib(12) = 144.
const FibSource = `
	.text
	.globl _start
_start:
	li a0, 12
	call fib
	li a7, 93
	ecall

	.globl fib
	.type fib, @function
fib:
	li t0, 2
	blt a0, t0, fib_base
	addi sp, sp, -32
	sd ra, 24(sp)
	sd s0, 16(sp)
	sd s1, 8(sp)
	mv s0, a0
	addi a0, s0, -1
	call fib
	mv s1, a0
	addi a0, s0, -2
	call fib
	add a0, a0, s1
	ld ra, 24(sp)
	ld s0, 16(sp)
	ld s1, 8(sp)
	addi sp, sp, 32
fib_base:
	ret
	.size fib, .-fib
`

// FibExpected is the exit code of FibSource.
const FibExpected = 144

// FramePointerSource is a call chain whose functions maintain the frame
// pointer (s0) chain, for the frame-pointer stack stepper. Functions leaf3
// deliberately omits the frame pointer, exercising stepper fallback — the
// paper notes most RISC-V compilers treat x8 as a general register.
const FramePointerSource = `
	.text
	.globl _start
_start:
	li a0, 1
	call level1
	li a7, 93
	ecall

	.globl level1
	.type level1, @function
level1:
	addi sp, sp, -16
	sd ra, 8(sp)
	sd s0, 0(sp)
	addi s0, sp, 16
	call level2
	addi a0, a0, 1
	ld ra, 8(sp)
	ld s0, 0(sp)
	addi sp, sp, 16
	ret
	.size level1, .-level1

	.globl level2
	.type level2, @function
level2:
	addi sp, sp, -16
	sd ra, 8(sp)
	sd s0, 0(sp)
	addi s0, sp, 16
	call level3
	addi a0, a0, 2
	ld ra, 8(sp)
	ld s0, 0(sp)
	addi sp, sp, 16
	ret
	.size level2, .-level2

	.globl level3
	.type level3, @function
level3:
	addi sp, sp, -16
	sd ra, 8(sp)
	call spin
	addi a0, a0, 4
	ld ra, 8(sp)
	addi sp, sp, 16
	ret
	.size level3, .-level3

	.globl spin
	.type spin, @function
spin:
	li t0, 64
spin_loop:
	addi t0, t0, -1
	bnez t0, spin_loop
	addi a0, a0, 8
	ret
	.size spin, .-spin
`

// FramePointerExpected is the exit code of FramePointerSource: 1+8+4+2+1.
const FramePointerExpected = 16

// SMCSource is a self-modifying workload: smcloop runs ten iterations of an
// accumulate site emitted as a forced 4-byte addi (the .word), and after the
// fifth iteration the program stores a new encoding over the site (addi
// s0,s0,1 → addi s0,s0,3), so iterations 6–10 add 3 instead of 1. The
// native emulator handles this through decode-cache invalidation; the DBI
// engine must invalidate and retranslate the affected block. Static
// rewriting structurally cannot: the relocated copy of smcloop keeps the old
// encoding while the store patches the (never again executed) original — so
// a statically instrumented run exits with SMCStaticResult instead. It is
// deliberately NOT part of Programs(): suite-wide golden tests assume
// rewrite-equivalence, which this program exists to break.
const SMCSource = `
	.text
	.globl _start
_start:
	call smcloop
	mv a0, s0
	li a7, 93
	ecall

	.globl smcloop
smcloop:
	li s0, 0
	li s1, 0
	li s2, 10
	li s3, 5
smc_loop:
	.globl smc_site
smc_site:
	.word 0x00140413          # addi s0, s0, 1 (forced 4-byte encoding)
	addi s1, s1, 1
	bne s1, s3, smc_next      # after iteration 5: rewrite the site
	la t0, smc_site
	li t1, 0x00340413         # addi s0, s0, 3
	sw t1, 0(t0)
	fence.i
smc_next:
	blt s1, s2, smc_loop
	ret
	.size smcloop, .-smcloop
`

// SMCExpected is the exit code of SMCSource when self-modification takes
// effect: 5 iterations adding 1, then 5 adding 3.
const SMCExpected = 5*1 + 5*3

// SMCStaticResult is the exit code a statically rewritten smcloop produces:
// the store never reaches the relocated copy, so all 10 iterations add 1.
const SMCStaticResult = 10

// Program is one named workload in the suite, with enough metadata for
// tools that iterate over all of them (the differential oracle, the CLI).
type Program struct {
	Name     string
	Source   string
	ExitCode int      // expected exit code
	Funcs    []string // instrumentable functions (entry-patchable)
}

// Programs returns the workload suite. The matmul entry uses a reduced
// problem size so suite-wide tools stay fast; its exit code is 0.
func Programs() []Program {
	return []Program{
		{Name: "matmul", Source: MatmulSource(8, 2), ExitCode: 0,
			Funcs: []string{"multiply", "init_matrices"}},
		{Name: "jumptable", Source: JumpTableSource, ExitCode: JumpTableExpected,
			Funcs: []string{"dispatch"}},
		{Name: "tailcall", Source: TailCallSource, ExitCode: TailCallExpected,
			Funcs: []string{"f_outer", "f_middle", "f_inner"}},
		{Name: "farcall", Source: FarCallSource, ExitCode: FarCallExpected,
			Funcs: []string{"square"}},
		{Name: "fib", Source: FibSource, ExitCode: FibExpected,
			Funcs: []string{"fib"}},
		{Name: "framepointer", Source: FramePointerSource, ExitCode: FramePointerExpected,
			Funcs: []string{"level1", "level2", "spin"}},
	}
}
