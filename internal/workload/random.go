package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomProgram generates a random, always-terminating, ABI-clean program
// with nFuncs functions, for differential testing and parse benchmarking.
// Control flow uses only forward branches and fixed-count loops, so every
// generated program halts; every temporary is written before it is read,
// so instrumentation is free to treat caller-saved registers as dead at
// ABI boundaries (the assumption Dyninst — and this reproduction — makes).
func RandomProgram(seed int64, nFuncs int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	b.WriteString("\t.text\n\t.globl _start\n_start:\n")
	fmt.Fprintf(&b, "\tli a0, %d\n", rng.Intn(1000))
	for i := 0; i < nFuncs; i++ {
		fmt.Fprintf(&b, "\tcall fz%d\n", i)
	}
	// Clamp the accumulated value into a tame exit code.
	b.WriteString("\tandi a0, a0, 255\n\tli a7, 93\n\tecall\n\n")
	for i := 0; i < nFuncs; i++ {
		var callable []string
		// Only higher-numbered functions are callable: no recursion.
		for j := i + 1; j < nFuncs && j < i+4; j++ {
			callable = append(callable, fmt.Sprintf("fz%d", j))
		}
		writeRandomFunc(&b, rng, fmt.Sprintf("fz%d", i), callable)
	}
	return b.String()
}

// writeRandomFunc emits one random function that transforms a0 and returns.
func writeRandomFunc(b *strings.Builder, rng *rand.Rand, name string, callable []string) {
	fmt.Fprintf(b, "\t.globl %s\n\t.type %s, @function\n%s:\n", name, name, name)

	hasCall := len(callable) > 0 && rng.Intn(2) == 0
	if hasCall {
		b.WriteString("\taddi sp, sp, -16\n\tsd ra, 8(sp)\n")
	}

	regs := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	for i, r := range regs {
		fmt.Fprintf(b, "\taddi %s, a0, %d\n", r, i*7)
	}

	labels := 0
	nOps := 4 + rng.Intn(10)
	rr := func() string { return regs[rng.Intn(len(regs))] }
	for i := 0; i < nOps; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			fmt.Fprintf(b, "\taddi %s, %s, %d\n", rr(), rr(), rng.Intn(256)-128)
		case 2:
			fmt.Fprintf(b, "\tadd %s, %s, %s\n", rr(), rr(), rr())
		case 3:
			fmt.Fprintf(b, "\tsub %s, %s, %s\n", rr(), rr(), rr())
		case 4:
			fmt.Fprintf(b, "\txor %s, %s, %s\n", rr(), rr(), rr())
		case 5:
			fmt.Fprintf(b, "\tmul %s, %s, %s\n", rr(), rr(), rr())
		case 6:
			fmt.Fprintf(b, "\tslli %s, %s, %d\n", rr(), rr(), 1+rng.Intn(5))
		case 7:
			// Forward branch over the next chunk.
			labels++
			cond := []string{"beq", "bne", "blt", "bge"}[rng.Intn(4)]
			fmt.Fprintf(b, "\t%s %s, %s, %s_l%d\n", cond, rr(), rr(), name, labels)
			fmt.Fprintf(b, "\taddi %s, %s, 1\n", rr(), rr())
			fmt.Fprintf(b, "%s_l%d:\n", name, labels)
		case 8:
			// Fixed-count loop on t6 (reserved for loop counters).
			labels++
			fmt.Fprintf(b, "\tli t6, %d\n%s_loop%d:\n", 2+rng.Intn(4), name, labels)
			fmt.Fprintf(b, "\tadd %s, %s, %s\n", rr(), rr(), rr())
			fmt.Fprintf(b, "\taddi t6, t6, -1\n\tbnez t6, %s_loop%d\n", name, labels)
		case 9:
			fmt.Fprintf(b, "\tand %s, %s, %s\n", rr(), rr(), rr())
		}
	}

	b.WriteString("\tadd a0, t0, t1\n\txor a0, a0, t2\n")
	if hasCall {
		fmt.Fprintf(b, "\tcall %s\n", callable[rng.Intn(len(callable))])
		b.WriteString("\tld ra, 8(sp)\n\taddi sp, sp, 16\n")
	}
	b.WriteString("\tret\n")
	fmt.Fprintf(b, "\t.size %s, .-%s\n\n", name, name)
}
