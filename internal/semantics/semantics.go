// Package semantics supplies value-level instruction semantics to the
// dataflow analyses, reproducing the design of the paper's SAIL pipeline
// (Section 3.2.4): a declarative JSON intermediate representation — free of
// the error-handling detail a formal spec carries — is compiled at program
// start into semantic objects, one per instruction, that analyses can
// evaluate. Adding a new extension means adding JSON records and re-running
// this compilation, exactly the property the paper's pipeline was built for.
//
// The paper derives its JSON from the official RISC-V SAIL model via an
// OCaml extraction stage; that toolchain is not available here, so the JSON
// in spec.json is authored directly from the ISA manual (the substitution is
// recorded in DESIGN.md). The pipeline architecture — JSON IR in, semantic
// classes out — is the same.
package semantics

import (
	_ "embed"
	"encoding/json"
	"fmt"

	"rvdyn/internal/riscv"
)

//go:embed spec.json
var specJSON []byte

// Expr is one node of a semantic expression tree.
type Expr struct {
	Op  string `json:"op"`            // reg imm pc size const add sub and or xor shl shr sar mul slt sltu sext32 load
	Reg string `json:"reg,omitempty"` // operand role for op=="reg": rs1 or rs2
	K   int64  `json:"k,omitempty"`   // constant for op=="const"
	W   int    `json:"w,omitempty"`   // width for op=="load"
	A   *Expr  `json:"a,omitempty"`
	B   *Expr  `json:"b,omitempty"`
}

// Assign is one effect of an instruction: dst is "rd" or "pc".
type Assign struct {
	Dst string `json:"dst"`
	Src *Expr  `json:"src"`
}

// Sem is the compiled semantic object for one mnemonic.
type Sem struct {
	Mn      riscv.Mnemonic
	Assigns []Assign
}

type specFile struct {
	Instructions []struct {
		Mn     string   `json:"mn"`
		Assign []Assign `json:"assign"`
	} `json:"instructions"`
}

var table = func() map[riscv.Mnemonic]*Sem {
	var spec specFile
	if err := json.Unmarshal(specJSON, &spec); err != nil {
		panic(fmt.Sprintf("semantics: bad embedded spec: %v", err))
	}
	m := make(map[riscv.Mnemonic]*Sem, len(spec.Instructions))
	for _, rec := range spec.Instructions {
		mn, ok := riscv.LookupMnemonic(rec.Mn)
		if !ok {
			panic(fmt.Sprintf("semantics: spec references unknown mnemonic %q", rec.Mn))
		}
		m[mn] = &Sem{Mn: mn, Assigns: rec.Assign}
	}
	return m
}()

// For returns the semantic object for a mnemonic. The boolean is false for
// opaque instructions (no value semantics; def/use sets still available from
// the instruction model).
func For(mn riscv.Mnemonic) (*Sem, bool) {
	s, ok := table[mn]
	return s, ok
}

// Env supplies the context for evaluating a semantic expression over one
// concrete instruction: register values (possibly partially known) and an
// optional memory oracle (used by jump-table analysis to read the table
// bytes out of the binary image).
type Env struct {
	Inst riscv.Inst
	// Reg returns the value of a register and whether it is known.
	Reg func(r riscv.Reg) (uint64, bool)
	// Load reads w bytes of little-endian memory; nil disables loads.
	Load func(addr uint64, w int) (uint64, bool)
}

func (e *Env) role(role string) (riscv.Reg, error) {
	switch role {
	case "rs1":
		return e.Inst.Rs1, nil
	case "rs2":
		return e.Inst.Rs2, nil
	}
	return riscv.RegNone, fmt.Errorf("semantics: unknown operand role %q", role)
}

// Eval evaluates an expression; ok=false means a needed input was unknown.
func Eval(x *Expr, env *Env) (uint64, bool) {
	if x == nil {
		return 0, false
	}
	switch x.Op {
	case "imm":
		return uint64(env.Inst.Imm), true
	case "pc":
		return env.Inst.Addr, true
	case "size":
		return env.Inst.Size(), true
	case "const":
		return uint64(x.K), true
	case "reg":
		r, err := env.role(x.Reg)
		if err != nil {
			return 0, false
		}
		if r == riscv.X0 {
			return 0, true
		}
		if env.Reg == nil {
			return 0, false
		}
		return env.Reg(r)
	case "load":
		if env.Load == nil {
			return 0, false
		}
		addr, ok := Eval(x.A, env)
		if !ok {
			return 0, false
		}
		return env.Load(addr, x.W)
	case "sext32":
		v, ok := Eval(x.A, env)
		if !ok {
			return 0, false
		}
		return uint64(int64(int32(uint32(v)))), true
	}
	a, okA := Eval(x.A, env)
	b, okB := Eval(x.B, env)
	if !okA || !okB {
		return 0, false
	}
	switch x.Op {
	case "add":
		return a + b, true
	case "sub":
		return a - b, true
	case "and":
		return a & b, true
	case "or":
		return a | b, true
	case "xor":
		return a ^ b, true
	case "shl":
		return a << (b & 63), true
	case "shr":
		return a >> (b & 63), true
	case "sar":
		return uint64(int64(a) >> (b & 63)), true
	case "mul":
		return a * b, true
	case "slt":
		if int64(a) < int64(b) {
			return 1, true
		}
		return 0, true
	case "sltu":
		if a < b {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// EvalRd evaluates the instruction's rd assignment under env. ok=false if
// the mnemonic is opaque, has no rd assignment, or inputs were unknown.
func EvalRd(env *Env) (uint64, bool) {
	s, ok := For(env.Inst.Mn)
	if !ok {
		return 0, false
	}
	for _, as := range s.Assigns {
		if as.Dst == "rd" {
			return Eval(as.Src, env)
		}
	}
	return 0, false
}

// UsesLoad reports whether the rd assignment of the mnemonic reads memory
// (the signature of a jump-table dispatch load).
func UsesLoad(mn riscv.Mnemonic) bool {
	s, ok := For(mn)
	if !ok {
		return false
	}
	for _, as := range s.Assigns {
		if as.Dst == "rd" && exprHasLoad(as.Src) {
			return true
		}
	}
	return false
}

func exprHasLoad(x *Expr) bool {
	if x == nil {
		return false
	}
	if x.Op == "load" {
		return true
	}
	return exprHasLoad(x.A) || exprHasLoad(x.B)
}
