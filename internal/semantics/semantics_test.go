package semantics

import (
	"testing"

	"rvdyn/internal/riscv"
)

func env(inst riscv.Inst, regs map[riscv.Reg]uint64) *Env {
	return &Env{
		Inst: inst,
		Reg: func(r riscv.Reg) (uint64, bool) {
			v, ok := regs[r]
			return v, ok
		},
	}
}

func TestEvalArith(t *testing.T) {
	cases := []struct {
		inst riscv.Inst
		regs map[riscv.Reg]uint64
		want uint64
	}{
		{riscv.Inst{Mn: riscv.MnADDI, Rs1: riscv.RegA0, Imm: 5}, map[riscv.Reg]uint64{riscv.RegA0: 10}, 15},
		{riscv.Inst{Mn: riscv.MnADD, Rs1: riscv.RegA0, Rs2: riscv.RegA1}, map[riscv.Reg]uint64{riscv.RegA0: 3, riscv.RegA1: 4}, 7},
		{riscv.Inst{Mn: riscv.MnSUB, Rs1: riscv.RegA0, Rs2: riscv.RegA1}, map[riscv.Reg]uint64{riscv.RegA0: 3, riscv.RegA1: 4}, ^uint64(0)},
		{riscv.Inst{Mn: riscv.MnLUI, Imm: 0x12345}, nil, 0x12345000},
		{riscv.Inst{Mn: riscv.MnAUIPC, Addr: 0x10000, Imm: 2}, nil, 0x12000},
		{riscv.Inst{Mn: riscv.MnSLLI, Rs1: riscv.RegT0, Imm: 3}, map[riscv.Reg]uint64{riscv.RegT0: 5}, 40},
		{riscv.Inst{Mn: riscv.MnADDIW, Rs1: riscv.RegT0, Imm: 1}, map[riscv.Reg]uint64{riscv.RegT0: 0xffffffff}, 0},
		{riscv.Inst{Mn: riscv.MnANDI, Rs1: riscv.RegT0, Imm: 0xff}, map[riscv.Reg]uint64{riscv.RegT0: 0x1234}, 0x34},
		{riscv.Inst{Mn: riscv.MnSLTU, Rs1: riscv.RegT0, Rs2: riscv.RegT1}, map[riscv.Reg]uint64{riscv.RegT0: 1, riscv.RegT1: 2}, 1},
	}
	for _, c := range cases {
		got, ok := EvalRd(env(c.inst, c.regs))
		if !ok {
			t.Errorf("%v: not evaluable", c.inst.Mn)
			continue
		}
		if got != c.want {
			t.Errorf("%v = %#x, want %#x", c.inst.Mn, got, c.want)
		}
	}
}

func TestEvalX0AlwaysKnown(t *testing.T) {
	inst := riscv.Inst{Mn: riscv.MnADDI, Rs1: riscv.X0, Imm: 42}
	got, ok := EvalRd(&Env{Inst: inst}) // no Reg oracle at all
	if !ok || got != 42 {
		t.Errorf("li via x0 = %d, %v", got, ok)
	}
}

func TestEvalUnknownInput(t *testing.T) {
	inst := riscv.Inst{Mn: riscv.MnADDI, Rs1: riscv.RegA0, Imm: 5}
	if _, ok := EvalRd(env(inst, nil)); ok {
		t.Error("evaluated with unknown rs1")
	}
}

func TestEvalLoad(t *testing.T) {
	inst := riscv.Inst{Mn: riscv.MnLD, Rs1: riscv.RegT0, Imm: 8}
	e := env(inst, map[riscv.Reg]uint64{riscv.RegT0: 0x1000})
	e.Load = func(addr uint64, w int) (uint64, bool) {
		if addr == 0x1008 && w == 8 {
			return 0xdeadbeef, true
		}
		return 0, false
	}
	got, ok := EvalRd(e)
	if !ok || got != 0xdeadbeef {
		t.Errorf("ld = %#x, %v", got, ok)
	}
	// Without a memory oracle the load is unknown.
	if _, ok := EvalRd(env(inst, map[riscv.Reg]uint64{riscv.RegT0: 0x1000})); ok {
		t.Error("load evaluated without memory oracle")
	}
}

func TestOpaqueInstructions(t *testing.T) {
	for _, mn := range []riscv.Mnemonic{riscv.MnFADDD, riscv.MnECALL, riscv.MnFENCE, riscv.MnSD} {
		if _, ok := For(mn); ok {
			t.Errorf("%v unexpectedly has value semantics", mn)
		}
	}
}

func TestUsesLoad(t *testing.T) {
	if !UsesLoad(riscv.MnLD) || !UsesLoad(riscv.MnLW) {
		t.Error("ld/lw should report loads")
	}
	if UsesLoad(riscv.MnADD) || UsesLoad(riscv.MnJALR) {
		t.Error("add/jalr should not report loads")
	}
}

func TestSpecCoversSlicingCore(t *testing.T) {
	// The mnemonics the jalr classifier's backward slice depends on must all
	// have semantics.
	for _, mn := range []riscv.Mnemonic{
		riscv.MnLUI, riscv.MnAUIPC, riscv.MnADDI, riscv.MnADD, riscv.MnSLLI,
		riscv.MnLD, riscv.MnLW, riscv.MnJAL, riscv.MnJALR,
	} {
		if _, ok := For(mn); !ok {
			t.Errorf("no semantics for %v", mn)
		}
	}
}
