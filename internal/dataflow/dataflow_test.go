package dataflow

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

func parseFunc(t *testing.T, src, name string) *parse.Function {
	t.Helper()
	f, err := asm.Assemble(src, asm.Options{NoCompress: true})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	st, err := symtab.FromFile(f)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := parse.Parse(st, parse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn, ok := cfg.FuncByName(name)
	if !ok {
		t.Fatalf("function %s not found", name)
	}
	return fn
}

const livenessProg = `
	.text
	.globl _start
_start:
	li a0, 0
	call f
	li a7, 93
	ecall

	.globl f
	.type f, @function
f:
	add t0, a0, a2    # reads a0,a2; writes t0
	add t1, t0, t0    # reads t0; writes t1
	beqz t1, f_skip
	add a0, t1, zero
f_skip:
	ret
	.size f, .-f
`

func TestLivenessBasic(t *testing.T) {
	fn := parseFunc(t, livenessProg, "f")
	lv := Liveness(fn)
	entry := fn.EntryBlock()

	in := lv.LiveIn[entry]
	// a0 and a2 feed the first add: live at entry.
	if !in.Contains(riscv.RegA0) || !in.Contains(riscv.RegA2) {
		t.Errorf("entry live-in %v missing a0/a2", in)
	}
	// t0 and t1 are written before any read: dead at entry.
	if in.Contains(riscv.RegT0) || in.Contains(riscv.RegT1) {
		t.Errorf("entry live-in %v wrongly contains t0/t1", in)
	}
	// ra is needed by the eventual ret.
	if !in.Contains(riscv.RegRA) {
		t.Errorf("entry live-in %v missing ra", in)
	}

	// Dead registers at entry must include the scratch temporaries.
	dead := lv.DeadBefore(fn.Entry)
	for _, r := range []riscv.Reg{riscv.RegT0, riscv.RegT1, riscv.RegT2, riscv.RegT3} {
		if !dead.Contains(r) {
			t.Errorf("%v not dead at entry", r)
		}
	}
	if dead.Contains(riscv.RegA0) || dead.Contains(riscv.RegSP) {
		t.Errorf("a0/sp wrongly dead at entry: %v", dead)
	}
}

func TestLivenessMidBlock(t *testing.T) {
	fn := parseFunc(t, livenessProg, "f")
	lv := Liveness(fn)
	entry := fn.EntryBlock()
	// Before the second add (reads t0), t0 is live.
	second := entry.Insts[1]
	live := lv.LiveBefore(second.Addr)
	if !live.Contains(riscv.RegT0) {
		t.Errorf("t0 not live before its use: %v", live)
	}
	// a2 is no longer live after its last use in the first add (unlike
	// a0/a1, it is not a potential return register, so nothing keeps it
	// alive to the exit).
	if live.Contains(riscv.RegA2) {
		t.Errorf("a2 still live after last use: %v", live)
	}
}

func TestLivenessAcrossCall(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	ecall

	.globl g
	.type g, @function
g:
	addi sp, sp, -16
	sd ra, 8(sp)
	sd s1, 0(sp)
	li s1, 7          # callee-saved: survives the call
	li t3, 9          # caller-saved: dies at the call
	call h
	add a0, a0, s1
	ld ra, 8(sp)
	ld s1, 0(sp)
	addi sp, sp, 16
	ret
	.size g, .-g

	.globl h
	.type h, @function
h:
	li a0, 1
	ret
	.size h, .-h
`
	fn := parseFunc(t, src, "g")
	lv := Liveness(fn)
	// Find the call instruction.
	var callAddr uint64
	for _, b := range fn.Blocks {
		if b.Purpose == parse.PurposeCall {
			callAddr = b.Last().Addr
		}
	}
	if callAddr == 0 {
		t.Fatal("no call block in g")
	}
	live := lv.LiveBefore(callAddr)
	if !live.Contains(riscv.RegS1) {
		t.Errorf("s1 (used after call) not live before call: %v", live)
	}
	if live.Contains(riscv.RegT3) {
		t.Errorf("t3 (caller-saved, dead after call) live before call: %v", live)
	}
}

func TestDeadScratchOrdering(t *testing.T) {
	fn := parseFunc(t, livenessProg, "f")
	lv := Liveness(fn)
	scratch := lv.DeadScratchX(fn.Entry)
	if len(scratch) == 0 {
		t.Fatal("no dead scratch registers at entry")
	}
	// Preference order puts temporaries first.
	if scratch[0] != riscv.RegT0 && scratch[0] != riscv.RegT1 && scratch[0] != riscv.RegT2 {
		t.Errorf("first scratch = %v, want a temporary", scratch[0])
	}
}

func TestLivenessMatmulInnerLoop(t *testing.T) {
	// The paper's optimization hinges on instrumentation points having dead
	// registers available; verify the matmul inner-loop block has some.
	f, err := asm.Assemble(workload.MatmulSource(10, 1), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := symtab.FromFile(f)
	cfg, err := parse.Parse(st, parse.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fn, _ := cfg.FuncByName("multiply")
	lv := Liveness(fn)
	for _, b := range fn.Blocks {
		dead := lv.DeadScratchX(b.Start)
		if len(dead) == 0 {
			t.Errorf("block %v: no dead scratch registers (liveness too conservative)", b)
		}
	}
}

func TestStackHeightsFib(t *testing.T) {
	fn := parseFunc(t, workload.FibSource, "fib")
	sr := StackHeights(fn)

	if h, ok := sr.HeightAt(fn.Entry); !ok || h != 0 {
		t.Errorf("entry height = %d, %v", h, ok)
	}
	// Find the first call site: height must be -32, ra spilled to slot -8.
	var callAddr uint64
	for _, b := range fn.Blocks {
		if b.Purpose == parse.PurposeCall && callAddr == 0 {
			callAddr = b.Last().Addr
		}
	}
	if callAddr == 0 {
		t.Fatal("no call in fib")
	}
	h, ok := sr.HeightAt(callAddr)
	if !ok || h != -32 {
		t.Errorf("height before recursive call = %d, %v; want -32", h, ok)
	}
	ra, ok := sr.RALocAt(callAddr)
	if !ok || ra.InReg || ra.Slot != -8 {
		t.Errorf("ra location before call = %+v, %v; want spilled at -8", ra, ok)
	}
	if fs, ok := sr.FrameSizeAt(callAddr); !ok || fs != 32 {
		t.Errorf("frame size = %d, %v", fs, ok)
	}
}

func TestStackHeightsLeaf(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	ecall
	.globl leaf
	.type leaf, @function
leaf:
	addi a0, a0, 1
	ret
	.size leaf, .-leaf
`
	fn := parseFunc(t, src, "leaf")
	sr := StackHeights(fn)
	last := fn.Blocks[len(fn.Blocks)-1].Last()
	if h, ok := sr.HeightAt(last.Addr); !ok || h != 0 {
		t.Errorf("leaf height at ret = %d, %v", h, ok)
	}
	ra, ok := sr.RALocAt(last.Addr)
	if !ok || !ra.InReg {
		t.Errorf("leaf ra loc = %+v, %v; want in-register", ra, ok)
	}
}

func TestStackHeightJoinMismatch(t *testing.T) {
	// Two paths reaching a join with different heights must yield unknown.
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	ecall
	.globl odd
	.type odd, @function
odd:
	beqz a0, skip
	addi sp, sp, -16
skip:
	addi a1, a1, 1
	jr ra
	.size odd, .-odd
`
	fn := parseFunc(t, src, "odd")
	sr := StackHeights(fn)
	// The join block starts at "skip".
	var joinAddr uint64
	for _, b := range fn.Blocks {
		if len(b.In) == 2 {
			joinAddr = b.Start
		}
	}
	if joinAddr == 0 {
		t.Fatal("no join block found")
	}
	if _, ok := sr.HeightAt(joinAddr); ok {
		t.Error("join with conflicting heights reported a known height")
	}
}

func TestBackwardSlice(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	ecall
	.globl f
	.type f, @function
f:
	lui t0, 16        # in slice: defines t0
	addi t0, t0, 32   # in slice
	li t1, 99         # NOT in slice
	slli t2, a0, 3    # in slice: feeds t0 via add
	add t0, t0, t2    # in slice
	jalr zero, 0(t0)
	.size f, .-f
`
	fn := parseFunc(t, src, "f")
	jalr := fn.Blocks[0].Last()
	nodes := BackwardSlice(fn, jalr.Addr, riscv.RegT0)
	mns := map[riscv.Mnemonic]int{}
	for _, n := range nodes {
		mns[n.Inst().Mn]++
	}
	if mns[riscv.MnLUI] != 1 || mns[riscv.MnADDI] != 1 || mns[riscv.MnSLLI] != 1 || mns[riscv.MnADD] != 1 {
		t.Errorf("slice mnemonics = %v", mns)
	}
	// li t1 -> addi with rd=t1 must not appear.
	for _, n := range nodes {
		if n.Inst().Rd == riscv.RegT1 {
			t.Errorf("unrelated instruction in slice: %v", n.Inst())
		}
	}
}

func TestBackwardSliceAcrossBlocks(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	ecall
	.globl g
	.type g, @function
g:
	li t0, 5          # in slice (crosses block boundary)
	beqz a0, gskip
	addi t0, t0, 1    # in slice (one of two reaching defs)
gskip:
	add a1, t0, t0
	jr ra
	.size g, .-g
`
	fn := parseFunc(t, src, "g")
	var useAddr uint64
	for _, b := range fn.Blocks {
		for _, in := range b.Insts {
			if in.Mn == riscv.MnADD && in.Rd == riscv.RegA1 {
				useAddr = in.Addr
			}
		}
	}
	nodes := BackwardSlice(fn, useAddr, riscv.RegT0)
	if len(nodes) != 2 {
		for _, n := range nodes {
			t.Logf("  %v", n.Inst())
		}
		t.Errorf("slice has %d nodes, want 2 (both reaching defs)", len(nodes))
	}
}

func TestForwardSlice(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	ecall
	.globl h
	.type h, @function
h:
	li t0, 1          # criterion
	add t1, t0, t0    # affected
	add t2, t1, zero  # affected transitively
	li t3, 7          # unaffected
	add t4, t3, t3    # unaffected
	jr ra
	.size h, .-h
`
	fn := parseFunc(t, src, "h")
	crit := fn.Blocks[0].Insts[0]
	if crit.Rd != riscv.RegT0 {
		t.Fatalf("unexpected first instruction %v", crit)
	}
	nodes := ForwardSlice(fn, crit.Addr)
	got := map[riscv.Reg]bool{}
	for _, n := range nodes {
		got[n.Inst().Rd] = true
	}
	if !got[riscv.RegT1] || !got[riscv.RegT2] {
		t.Errorf("forward slice missing t1/t2 defs: %v", got)
	}
	if got[riscv.RegT3] || got[riscv.RegT4] {
		t.Errorf("forward slice includes unaffected t3/t4: %v", got)
	}
}

func TestForwardSliceKill(t *testing.T) {
	src := `
	.text
	.globl _start
_start:
	li a7, 93
	ecall
	.globl k
	.type k, @function
k:
	li t0, 1          # criterion
	li t0, 2          # kills t0 (not a use)
	add t1, t0, t0    # must NOT be in slice
	jr ra
	.size k, .-k
`
	fn := parseFunc(t, src, "k")
	crit := fn.Blocks[0].Insts[0]
	nodes := ForwardSlice(fn, crit.Addr)
	if len(nodes) != 0 {
		for _, n := range nodes {
			t.Logf("  %v", n.Inst())
		}
		t.Errorf("slice should be empty after kill, got %d nodes", len(nodes))
	}
}
