// Package dataflow is the DataflowAPI analog (paper Section 3.2.4). It
// annotates the parsed CFG with dataflow facts:
//
//   - register liveness, the analysis behind the paper's register-allocation
//     optimization ("when instrumentation needs registers, we attempt to use
//     dead registers ... if such registers are available, spilling the
//     contents can be avoided");
//   - stack-height analysis, which the SP-only frame stepper of the
//     stack walker consumes (RISC-V compilers usually drop the frame
//     pointer, Section 3.2.7);
//   - forward and backward slicing over register def-use chains.
//
// Instruction value semantics come from the semantics package — the
// compiled form of the SAIL-derived JSON pipeline.
package dataflow

import (
	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
)

// abiArgRegs are the integer and float argument registers.
var abiArgRegs = riscv.NewRegSet(
	riscv.RegA0, riscv.RegA1, riscv.RegA2, riscv.RegA3,
	riscv.RegA4, riscv.RegA5, riscv.RegA6, riscv.RegA7,
	riscv.F10, riscv.F11, riscv.F12, riscv.F13,
	riscv.F14, riscv.F15, riscv.F16, riscv.F17,
)

// abiCalleeSaved are the registers a function must preserve (plus sp).
var abiCalleeSaved = riscv.NewRegSet(
	riscv.RegSP, riscv.RegFP, riscv.RegS1, riscv.RegS2, riscv.RegS3,
	riscv.RegS4, riscv.RegS5, riscv.RegS6, riscv.RegS7, riscv.RegS8,
	riscv.RegS9, riscv.RegS10, riscv.RegS11,
	riscv.F8, riscv.F9, riscv.F18, riscv.F19, riscv.F20, riscv.F21,
	riscv.F22, riscv.F23, riscv.F24, riscv.F25, riscv.F26, riscv.F27,
)

// abiCallerSaved are the registers a call may clobber.
var abiCallerSaved = riscv.NewRegSet(
	riscv.RegRA, riscv.RegT0, riscv.RegT1, riscv.RegT2,
	riscv.RegA0, riscv.RegA1, riscv.RegA2, riscv.RegA3,
	riscv.RegA4, riscv.RegA5, riscv.RegA6, riscv.RegA7,
	riscv.RegT3, riscv.RegT4, riscv.RegT5, riscv.RegT6,
	riscv.F0, riscv.F1, riscv.F2, riscv.F3, riscv.F4, riscv.F5,
	riscv.F6, riscv.F7, riscv.F10, riscv.F11, riscv.F12, riscv.F13,
	riscv.F14, riscv.F15, riscv.F16, riscv.F17, riscv.F28, riscv.F29,
	riscv.F30, riscv.F31,
)

// exitLive is the conservative live set at function exits: preserved
// registers plus return values and the stack pointer.
var exitLive = abiCalleeSaved.Union(riscv.NewRegSet(
	riscv.RegA0, riscv.RegA1, riscv.F10, riscv.F11, riscv.RegRA,
))

// allRegs is the everything-live set used at unresolved control flow.
var allRegs = func() riscv.RegSet {
	var s riscv.RegSet
	for r := riscv.Reg(0); r < 64; r++ {
		s.Add(r)
	}
	return s
}()

// LivenessResult holds per-block live-in/live-out register sets.
type LivenessResult struct {
	Fn      *parse.Function
	LiveIn  map[*parse.Block]riscv.RegSet
	LiveOut map[*parse.Block]riscv.RegSet
}

// Liveness runs the backward may-live analysis over the function.
func Liveness(fn *parse.Function) *LivenessResult {
	res := &LivenessResult{
		Fn:      fn,
		LiveIn:  make(map[*parse.Block]riscv.RegSet, len(fn.Blocks)),
		LiveOut: make(map[*parse.Block]riscv.RegSet, len(fn.Blocks)),
	}
	changed := true
	for changed {
		changed = false
		// Reverse block order converges faster for backward problems.
		for i := len(fn.Blocks) - 1; i >= 0; i-- {
			b := fn.Blocks[i]
			out := blockExitLive(res, b)
			in := stepBlockBackward(b, out)
			if !out.Equal(res.LiveOut[b]) || !in.Equal(res.LiveIn[b]) {
				res.LiveOut[b] = out
				res.LiveIn[b] = in
				changed = true
			}
		}
	}
	return res
}

// blockExitLive computes the live-out set from successor live-ins and the
// ABI effects of interprocedural edges.
func blockExitLive(res *LivenessResult, b *parse.Block) riscv.RegSet {
	var out riscv.RegSet
	switch b.Purpose {
	case parse.PurposeReturn:
		return exitLive
	case parse.PurposeTailCall:
		// The callee receives arguments and must itself preserve the
		// callee-saved set for our caller.
		return abiArgRegs.Union(abiCalleeSaved).Union(riscv.NewRegSet(riscv.RegRA))
	case parse.PurposeUnresolved:
		return allRegs
	}
	for _, e := range b.Out {
		if e.To == nil {
			if !e.Kind.Interprocedural() {
				// An intra edge whose block did not materialize (rare):
				// be conservative.
				return allRegs
			}
			continue
		}
		if e.Kind == parse.EdgeCall {
			continue // handled inside stepBlockBackward at the call site
		}
		out = out.Union(res.LiveIn[e.To])
	}
	return out
}

// stepBlockBackward applies the per-instruction transfer over the block.
func stepBlockBackward(b *parse.Block, live riscv.RegSet) riscv.RegSet {
	for i := len(b.Insts) - 1; i >= 0; i-- {
		live = stepInstBackward(b, i, live)
	}
	return live
}

// stepInstBackward handles one instruction: live = (live - def) ∪ use, with
// calls modeled by their ABI footprint.
func stepInstBackward(b *parse.Block, i int, live riscv.RegSet) riscv.RegSet {
	inst := b.Insts[i]
	isCallSite := i == len(b.Insts)-1 && b.Purpose == parse.PurposeCall
	if isCallSite {
		// A call clobbers the caller-saved set and consumes argument
		// registers (conservatively all of them; without callee prototypes
		// the argument count is unknown).
		live = live.Minus(abiCallerSaved)
		live = live.Union(abiArgRegs)
		live.Add(riscv.RegSP)
		if inst.IsJALR() {
			live.Add(inst.Rs1)
		}
		return live
	}
	live = live.Minus(inst.RegsWritten())
	live = live.Union(inst.RegsRead())
	live.Remove(riscv.X0)
	live.Remove(riscv.RegPC)
	return live
}

// LiveBefore returns the live set immediately before the instruction at
// addr, or conservative everything-live if addr is not found.
func (res *LivenessResult) LiveBefore(addr uint64) riscv.RegSet {
	b, ok := res.Fn.BlockContaining(addr)
	if !ok {
		return allRegs
	}
	live := res.LiveOut[b]
	for i := len(b.Insts) - 1; i >= 0; i-- {
		if b.Insts[i].Addr < addr {
			break
		}
		live = stepInstBackward(b, i, live)
	}
	return live
}

// DeadBefore returns the registers provably dead immediately before the
// instruction at addr — the registers the paper's optimization hands to the
// code generator as free scratch space.
func (res *LivenessResult) DeadBefore(addr uint64) riscv.RegSet {
	return allRegs.Minus(res.LiveBefore(addr))
}

// DeadScratchX returns dead integer registers at addr in the code
// generator's preference order.
func (res *LivenessResult) DeadScratchX(addr uint64) []riscv.Reg {
	dead := res.DeadBefore(addr)
	var out []riscv.Reg
	for _, r := range riscv.ScratchCandidates {
		if dead.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}
