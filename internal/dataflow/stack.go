package dataflow

import (
	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
)

// Stack-height analysis (paper Section 3.2.4, consumed by Section 3.2.7's
// SP-only frame stepper): a forward dataflow that tracks, at every point,
// the offset of the stack pointer from its value at function entry, plus
// where the return address currently lives (still in ra, or spilled to a
// known stack slot). Heights are negative once a frame is allocated.

// HeightUnknown marks join mismatches or sp writes the analysis cannot
// model.
const HeightUnknown = int64(-1) << 62

// RALoc describes where the return address is at a program point.
type RALoc struct {
	// InReg is true while the return address is still in ra.
	InReg bool
	// Slot is the entry-sp-relative offset of the spilled return address
	// when InReg is false and Known is true.
	Slot  int64
	Known bool
}

type stackState struct {
	height int64
	ra     RALoc
	valid  bool
}

func (s stackState) merge(t stackState) stackState {
	if !s.valid {
		return t
	}
	if !t.valid {
		return s
	}
	out := s
	if s.height != t.height {
		out.height = HeightUnknown
	}
	if s.ra != t.ra {
		out.ra = RALoc{Known: false}
	}
	return out
}

// StackResult holds the analysis output.
type StackResult struct {
	Fn      *parse.Function
	entryIn map[*parse.Block]stackState
}

// StackHeights runs the forward analysis over the function.
func StackHeights(fn *parse.Function) *StackResult {
	res := &StackResult{Fn: fn, entryIn: map[*parse.Block]stackState{}}
	entry := fn.EntryBlock()
	if entry == nil {
		return res
	}
	res.entryIn[entry] = stackState{height: 0, ra: RALoc{InReg: true, Known: true}, valid: true}
	changed := true
	for changed {
		changed = false
		for _, b := range fn.Blocks {
			in, ok := res.entryIn[b]
			if !ok || !in.valid {
				continue
			}
			out := stepBlockForward(b, in)
			for _, e := range b.Out {
				if e.Kind.Interprocedural() || e.To == nil {
					continue
				}
				prev, seen := res.entryIn[e.To]
				var next stackState
				if seen {
					next = prev.merge(out)
				} else {
					next = out
				}
				if !seen || next != prev {
					res.entryIn[e.To] = next
					changed = true
				}
			}
		}
	}
	return res
}

func stepBlockForward(b *parse.Block, st stackState) stackState {
	for i := range b.Insts {
		st = stepInstForward(b, i, st)
	}
	return st
}

func stepInstForward(b *parse.Block, i int, st stackState) stackState {
	inst := b.Insts[i]
	isCallSite := i == len(b.Insts)-1 && b.Purpose == parse.PurposeCall
	if isCallSite {
		// The callee rewrites ra; after the call returns, the return address
		// of *this* frame is wherever the prologue put it. If it was still
		// in ra, the function made a call without saving ra — after the call
		// its own return address is lost to the analysis.
		if st.ra.InReg {
			st.ra = RALoc{Known: false}
		}
		return st
	}
	switch {
	case inst.Mn == riscv.MnADDI && inst.Rd == riscv.RegSP && inst.Rs1 == riscv.RegSP:
		if st.height != HeightUnknown {
			st.height += inst.Imm
		}
	case inst.RegsWritten().Contains(riscv.RegSP):
		st.height = HeightUnknown
	case inst.Mn == riscv.MnSD && inst.Rs2 == riscv.RegRA && inst.Rs1 == riscv.RegSP:
		if st.ra.InReg && st.height != HeightUnknown {
			st.ra = RALoc{InReg: false, Slot: st.height + inst.Imm, Known: true}
		} else if st.ra.InReg {
			st.ra = RALoc{Known: false}
		}
	case inst.Mn == riscv.MnLD && inst.Rd == riscv.RegRA && inst.Rs1 == riscv.RegSP:
		// Epilogue reload: ra holds the return address again.
		if st.ra.Known && !st.ra.InReg && st.height != HeightUnknown &&
			st.height+inst.Imm == st.ra.Slot {
			st.ra = RALoc{InReg: true, Known: true}
		} else {
			st.ra = RALoc{InReg: true, Known: true}
		}
	case inst.RegsWritten().Contains(riscv.RegRA):
		if st.ra.InReg {
			st.ra = RALoc{Known: false}
		}
	}
	return st
}

// stateBefore computes the state immediately before the instruction at addr.
func (res *StackResult) stateBefore(addr uint64) (stackState, bool) {
	b, ok := res.Fn.BlockContaining(addr)
	if !ok {
		return stackState{}, false
	}
	st, ok := res.entryIn[b]
	if !ok || !st.valid {
		return stackState{}, false
	}
	for i := range b.Insts {
		if b.Insts[i].Addr >= addr {
			break
		}
		st = stepInstForward(b, i, st)
	}
	return st, true
}

// HeightAt returns the sp-minus-entry-sp offset immediately before the
// instruction at addr (0 at function entry, typically negative inside a
// frame). ok is false when the height is unknown at that point.
func (res *StackResult) HeightAt(addr uint64) (int64, bool) {
	st, ok := res.stateBefore(addr)
	if !ok || st.height == HeightUnknown {
		return 0, false
	}
	return st.height, true
}

// RALocAt describes where the return address lives immediately before the
// instruction at addr.
func (res *StackResult) RALocAt(addr uint64) (RALoc, bool) {
	st, ok := res.stateBefore(addr)
	if !ok {
		return RALoc{}, false
	}
	return st.ra, st.ra.Known
}

// FrameSizeAt returns the current frame size (a non-negative byte count)
// when known.
func (res *StackResult) FrameSizeAt(addr uint64) (uint64, bool) {
	h, ok := res.HeightAt(addr)
	if !ok || h > 0 {
		return 0, false
	}
	return uint64(-h), true
}
