package dataflow

import (
	"sort"

	"rvdyn/internal/parse"
	"rvdyn/internal/riscv"
)

// Slicing (paper Section 3.2.4): backward slices collect the instructions
// that affected a value; forward slices collect the instructions a value
// affects. Slices here follow register def-use chains across the
// intraprocedural CFG; memory is treated as opaque (a def through a store
// does not reach a load), which matches how the parser's target resolution
// uses slicing and keeps the analysis sound for its consumers.

// SliceNode identifies one instruction in a slice.
type SliceNode struct {
	Block *parse.Block
	Index int
}

// Inst returns the instruction at the node.
func (n SliceNode) Inst() riscv.Inst { return n.Block.Insts[n.Index] }

type sliceKey struct {
	b   *parse.Block
	i   int
	reg riscv.Reg
}

// BackwardSlice returns the instructions that may have produced the value
// of reg as read by the instruction at addr (the criterion instruction is
// not included). Results are sorted by address.
func BackwardSlice(fn *parse.Function, addr uint64, reg riscv.Reg) []SliceNode {
	b, ok := fn.BlockContaining(addr)
	if !ok {
		return nil
	}
	start := -1
	for i, inst := range b.Insts {
		if inst.Addr == addr {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}

	visited := map[sliceKey]bool{}
	inSlice := map[SliceNode]bool{}
	var walk func(b *parse.Block, idx int, reg riscv.Reg)
	walk = func(b *parse.Block, idx int, reg riscv.Reg) {
		if reg == riscv.X0 || reg == riscv.RegNone || reg == riscv.RegPC {
			return
		}
		key := sliceKey{b, idx, reg}
		if visited[key] {
			return
		}
		visited[key] = true
		for i := idx - 1; i >= 0; i-- {
			inst := b.Insts[i]
			if !inst.RegsWritten().Contains(reg) {
				continue
			}
			node := SliceNode{b, i}
			if !inSlice[node] {
				inSlice[node] = true
				for _, src := range inst.RegsRead().Regs() {
					walk(b, i, src)
				}
			}
			return // nearest def in this block kills the search upward
		}
		for _, e := range b.In {
			if e.Kind.Interprocedural() || e.From == nil {
				continue
			}
			walk(e.From, len(e.From.Insts), reg)
		}
	}
	walk(b, start, reg)

	out := make([]SliceNode, 0, len(inSlice))
	for n := range inSlice {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Inst().Addr < out[j].Inst().Addr })
	return out
}

// ForwardSlice returns the instructions whose values may be affected by the
// registers written at addr. The criterion instruction is not included.
func ForwardSlice(fn *parse.Function, addr uint64) []SliceNode {
	b, ok := fn.BlockContaining(addr)
	if !ok {
		return nil
	}
	start := -1
	for i, inst := range b.Insts {
		if inst.Addr == addr {
			start = i
			break
		}
	}
	if start < 0 {
		return nil
	}

	visited := map[sliceKey]bool{}
	inSlice := map[SliceNode]bool{}
	var walk func(b *parse.Block, idx int, reg riscv.Reg)
	walk = func(b *parse.Block, idx int, reg riscv.Reg) {
		if reg == riscv.X0 || reg == riscv.RegNone || reg == riscv.RegPC {
			return
		}
		key := sliceKey{b, idx, reg}
		if visited[key] {
			return
		}
		visited[key] = true
		for i := idx; i < len(b.Insts); i++ {
			inst := b.Insts[i]
			if inst.RegsRead().Contains(reg) {
				node := SliceNode{b, i}
				if !inSlice[node] {
					inSlice[node] = true
					for _, d := range inst.RegsWritten().Regs() {
						walk(b, i+1, d)
					}
				}
			}
			if inst.RegsWritten().Contains(reg) {
				return // killed
			}
		}
		for _, e := range b.Out {
			if e.Kind.Interprocedural() || e.To == nil {
				continue
			}
			walk(e.To, 0, reg)
		}
	}
	crit := b.Insts[start]
	for _, d := range crit.RegsWritten().Regs() {
		walk(b, start+1, d)
	}

	out := make([]SliceNode, 0, len(inSlice))
	for n := range inSlice {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Inst().Addr < out[j].Inst().Addr })
	return out
}
