package profile

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

// TestProfileDBIParity pins the static-vs-dynamic instrumentation bridge:
// RunDBI must report exactly the call counts Run reports on the same binary
// (same Increment snippet, different delivery), charge every cycle to the
// root row, and keep the exact-sum property.
func TestProfileDBIParity(t *testing.T) {
	f, err := asm.Assemble(workload.MatmulSource(8, 2), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{
		Funcs: []string{"multiply", "init_matrices"},
		Mode:  codegen.ModeDeadRegister,
	}
	static, err := Run(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts.Obs = reg
	dyn, err := RunDBI(f, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.ExitCode != static.ExitCode {
		t.Fatalf("exit codes differ: static %d, dbi %d", static.ExitCode, dyn.ExitCode)
	}
	calls := func(rep *Report, name string) uint64 {
		for _, r := range rep.Rows {
			if r.Name == name {
				return r.Calls
			}
		}
		t.Fatalf("no row %q", name)
		return 0
	}
	for _, name := range opts.Funcs {
		if s, d := calls(static, name), calls(dyn, name); s != d {
			t.Errorf("%s: static counted %d calls, dbi counted %d", name, s, d)
		}
	}
	var sum uint64
	for _, r := range dyn.Rows {
		sum += r.Cycles
		if r.Name != "_start" && r.Cycles != 0 {
			t.Errorf("%s: dbi mode attributed %d cycles (must all charge to root)", r.Name, r.Cycles)
		}
	}
	if sum != dyn.TotalCycles {
		t.Errorf("row cycles sum to %d, total is %d", sum, dyn.TotalCycles)
	}
	if dyn.TotalCycles == 0 || dyn.TotalInsts == 0 {
		t.Error("dbi run retired nothing")
	}
	if reg.Counter("emu.dbi.translations").Load() == 0 {
		t.Error("dbi profile run recorded no translations")
	}
	if reg.Counter("emu.dbi.probes").Load() != 2 {
		t.Errorf("emu.dbi.probes = %d, want 2", reg.Counter("emu.dbi.probes").Load())
	}
}

// TestProfileDBIRecursion repeats the recursion count check through the
// dynamic engine: 465 fib calls, exactly as the static profiler counts.
func TestProfileDBIRecursion(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDBI(f, Options{Funcs: []string{"fib"}, Mode: codegen.ModeDeadRegister})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.Name == "fib" && r.Calls != 465 {
			t.Errorf("fib calls = %d, want 465", r.Calls)
		}
	}
}
