package profile

import (
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/obs"
	"rvdyn/internal/workload"
)

// TestProfileMatmul pins the acceptance criterion: the per-function rows
// partition the run exactly, so their cycle sum equals the emulator's
// retired-cycle counter, and the call counts match the workload's structure
// (reps=2 multiply calls, one init_matrices call).
func TestProfileMatmul(t *testing.T) {
	f, err := asm.Assemble(workload.MatmulSource(8, 2), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rep, err := Run(f, Options{
		Funcs: []string{"multiply", "init_matrices"},
		Mode:  codegen.ModeDeadRegister,
		Obs:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ExitCode != 0 {
		t.Fatalf("exit code = %d, want 0", rep.ExitCode)
	}
	byName := map[string]Row{}
	var sum uint64
	for _, r := range rep.Rows {
		byName[r.Name] = r
		sum += r.Cycles
	}
	if sum != rep.TotalCycles {
		t.Errorf("row cycles sum to %d, total is %d (must match exactly)", sum, rep.TotalCycles)
	}
	if got := byName["multiply"].Calls; got != 2 {
		t.Errorf("multiply calls = %d, want 2", got)
	}
	if got := byName["init_matrices"].Calls; got != 1 {
		t.Errorf("init_matrices calls = %d, want 1", got)
	}
	if byName["multiply"].Cycles == 0 {
		t.Error("multiply attributed zero cycles")
	}
	if _, ok := byName["_start"]; !ok {
		t.Errorf("no root row for _start; rows = %+v", rep.Rows)
	}
	// The dominant row of a matmul is the multiply kernel.
	if rep.Rows[0].Name != "multiply" {
		t.Errorf("hottest row = %s, want multiply", rep.Rows[0].Name)
	}
	// The run also fed the emulator's counters through the shared registry.
	if reg.Counter("emu.instructions_retired").Load() != rep.TotalInsts {
		t.Errorf("emu.instructions_retired = %d, want %d",
			reg.Counter("emu.instructions_retired").Load(), rep.TotalInsts)
	}
	if reg.Counter("profile.probe_hits").Load() == 0 {
		t.Error("no probe hits recorded")
	}
	out := rep.String()
	if !strings.Contains(out, "multiply") || !strings.Contains(out, "total") {
		t.Errorf("report table missing rows:\n%s", out)
	}
}

// TestProfileRecursion checks exclusive attribution under recursion: fib's
// self-calls must neither double-count cycles nor break the exact-sum
// property, and the call count must be the full recursion tree.
func TestProfileRecursion(t *testing.T) {
	f, err := asm.Assemble(workload.FibSource, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(f, Options{Funcs: []string{"fib"}, Mode: codegen.ModeDeadRegister})
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	var fib Row
	for _, r := range rep.Rows {
		sum += r.Cycles
		if r.Name == "fib" {
			fib = r
		}
	}
	if sum != rep.TotalCycles {
		t.Errorf("row cycles sum to %d, total is %d", sum, rep.TotalCycles)
	}
	// The workload computes fib(12) naively: 2*F(13)-1 = 465 calls.
	if fib.Calls != 465 {
		t.Errorf("fib calls = %d, want 465", fib.Calls)
	}
	if fib.Cycles == 0 || fib.Cycles > rep.TotalCycles {
		t.Errorf("fib cycles = %d out of %d", fib.Cycles, rep.TotalCycles)
	}
}

// TestProfileTraceSpans checks the per-call spans: one span per completed
// call, on the virtual clock, nested within their callers.
func TestProfileTraceSpans(t *testing.T) {
	f, err := asm.Assemble(workload.MatmulSource(8, 2), asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	rep, err := Run(f, Options{
		Funcs: []string{"multiply", "init_matrices"},
		Mode:  codegen.ModeDeadRegister,
		Trace: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	evs := tr.Events()
	var spans int
	for _, ev := range evs {
		if ev.Cat != "profile.call" {
			continue
		}
		spans++
		if ev.Dur < 0 || ev.TS < 0 {
			t.Errorf("span %s has negative time: ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
		}
	}
	if spans != 3 {
		t.Errorf("got %d profile.call spans, want 3 (2 multiply + 1 init)", spans)
	}
	if rep.TotalCycles == 0 {
		t.Error("traced run retired no cycles")
	}
}
