// Package sample is a deterministic sampling profiler driven by the
// emulator's virtual clock — the low-overhead complement to package
// profile's exact instrumentation-based attribution. A sample trigger in
// the dispatch loop fires every Period virtual cycles; each sample
// captures the PC and a call stack through internal/stackwalk and
// attributes them to original-program addresses, even when execution is
// inside a DBI code cache (cache PCs map back through the engine's
// translation-group bounds; samples landing between bounds defer to the
// next bound, where the compensated clock and architectural state are
// native-identical).
//
// Because the marks are laid on the virtual clock rather than wall time,
// profiles are reproducible: two runs of the same binary with the same
// period produce byte-identical output, across the superblock fast path,
// the per-instruction slow path, and the DBI engine alike.
//
// A completed Profile exports three ways: pprof-compatible gzipped
// profile.proto (WritePprof/ParsePprof), folded-stack text for
// flamegraph.pl and speedscope (WriteFolded), and a top-N table
// (WriteTop).
package sample

import (
	"fmt"

	"rvdyn/internal/core"
	"rvdyn/internal/dbi"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
	"rvdyn/internal/parse"
	"rvdyn/internal/proc"
	"rvdyn/internal/stackwalk"
)

// Engine selects the execution engine under the sampler. All three fire
// samples at bit-identical virtual times for the same binary and period.
type Engine int

const (
	// EngineFast is the default superblock fused-dispatch engine.
	EngineFast Engine = iota
	// EngineSlow forces per-instruction dispatch.
	EngineSlow
	// EngineDBI runs under the dynamic binary instrumentation engine
	// (code-cache translation) with counter virtualization, sampling on
	// the compensated clock and mapping cache PCs back to original
	// addresses.
	EngineDBI
)

func (e Engine) String() string {
	switch e {
	case EngineFast:
		return "fast"
	case EngineSlow:
		return "slow"
	case EngineDBI:
		return "dbi"
	}
	return "?"
}

// Options configures one sampled run.
type Options struct {
	// Model is the cost model; nil means emu.P550().
	Model *emu.CostModel
	// Period is the virtual-cycle distance between samples (required).
	Period uint64
	// Engine selects the dispatch engine (default EngineFast).
	Engine Engine
	// MaxInst bounds the run (0 = unlimited).
	MaxInst uint64
	// Obs, when non-nil, attaches emulator metrics and records sampler
	// counters (profile.samples, profile.sample_defers).
	Obs *obs.Registry
	// NoCounterVirt (EngineDBI only) samples on the raw translation-
	// inflated clock instead of the compensated one. Profiles are still
	// deterministic run-to-run but no longer byte-identical to the native
	// engines' — the raw clock advances through cache-only instructions.
	NoCounterVirt bool
	// NoTrace (EngineFast only) disables the trace-compilation tier,
	// leaving superblock chaining. Output is byte-identical either way
	// (the trace tier defers to slower dispatch whenever a pass could
	// cross a sample mark); the flag exists for A/B overhead runs.
	NoTrace bool
	// Name labels the profile's mapping entry (the binary name pprof
	// shows). Empty means "prog".
	Name string
}

// Sample is one captured stack, innermost frame first, every PC an
// original-program address.
type Sample struct {
	Stack []uint64
}

// Profile is a completed sampled run.
type Profile struct {
	// Period is the configured sampling period in virtual cycles.
	Period uint64
	// TotalCycles/TotalInsts are the retired totals at exit (compensated
	// under EngineDBI unless NoCounterVirt).
	TotalCycles uint64
	TotalInsts  uint64
	// DurationNanos is TotalCycles through the cost model.
	DurationNanos uint64
	ExitCode      int
	// Samples in chronological order. len(Samples)*Period is within one
	// Period of TotalCycles.
	Samples []Sample

	name string
	cfg  *parse.CFG
	// execLo/execHi bound the executable image (the pprof mapping span).
	execLo, execHi uint64
}

// Run executes f to completion under the sampler and returns the profile.
func Run(f *elfrv.File, opts Options) (*Profile, error) {
	if opts.Period == 0 {
		return nil, fmt.Errorf("sample: period must be nonzero")
	}
	model := opts.Model
	if model == nil {
		model = emu.P550()
	}
	bin, err := core.FromFile(f)
	if err != nil {
		return nil, err
	}
	p, err := proc.Launch(f, model)
	if err != nil {
		return nil, err
	}
	cpu := p.CPU()
	if opts.Obs != nil {
		cpu.Obs = emu.NewMetrics(opts.Obs)
	}
	cpu.SlowDispatch = opts.Engine == EngineSlow
	cpu.NoTrace = opts.NoTrace

	var eng *dbi.Engine
	if opts.Engine == EngineDBI {
		var m dbi.Metrics
		if opts.Obs != nil {
			m = dbi.NewMetrics(opts.Obs)
		}
		eng, err = dbi.Attach(p, f, dbi.Options{Obs: m, NoCounterVirt: opts.NoCounterVirt})
		if err != nil {
			return nil, err
		}
	}

	name := opts.Name
	if name == "" {
		name = "prog"
	}
	prof := &Profile{Period: opts.Period, name: name, cfg: bin.CFG}
	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc == 0 || s.Flags&elfrv.SHFExecinstr == 0 {
			continue
		}
		if prof.execLo == 0 || s.Addr < prof.execLo {
			prof.execLo = s.Addr
		}
		if s.Addr+s.Size() > prof.execHi {
			prof.execHi = s.Addr + s.Size()
		}
	}

	w := stackwalk.New(bin.CFG, p)
	if eng != nil {
		w.Translate = func(pc uint64) uint64 {
			if orig, ok := eng.OrigPC(pc); ok {
				return orig
			}
			return pc
		}
	}

	sampleCount := opts.Obs.Counter("profile.samples")
	deferCount := opts.Obs.Counter("profile.sample_defers")

	capture := func() {
		frames, _ := w.Walk()
		stack := make([]uint64, 0, len(frames))
		for _, fr := range frames {
			if eng != nil {
				// Never let a cache-resident PC into the profile: a frame
				// that failed to map (possible only in the exit-drain
				// corner where the state is past the last group bound) is
				// dropped rather than misattributed.
				if lo, hi := eng.CacheRange(); fr.PC >= lo && fr.PC < hi {
					continue
				}
			}
			stack = append(stack, fr.PC)
		}
		if len(stack) == 0 {
			// Nothing walkable (e.g. PC outside every known function):
			// attribute to the entry so the sample is not lost.
			stack = append(stack, f.Entry)
		}
		prof.Samples = append(prof.Samples, Sample{Stack: stack})
		sampleCount.Inc()
	}

	cpu.SetSampler(opts.Period, func(c *emu.CPU) bool {
		if eng != nil {
			if lo, hi := eng.CacheRange(); c.PC >= lo && c.PC < hi {
				if _, ok := eng.OrigPC(c.PC); !ok {
					// Between translation-group bounds: the compensated
					// clock is not exact here. Defer to the next bound,
					// where state matches the native run bit-for-bit.
					deferCount.Inc()
					return false
				}
			}
		}
		capture()
		return true
	})
	defer cpu.SetSampler(0, nil)

	var ev proc.Event
	if eng != nil {
		ev, err = eng.ContinueBudget(opts.MaxInst)
	} else {
		ev, err = p.ContinueBudget(opts.MaxInst)
	}
	if err != nil {
		return nil, err
	}
	if ev.Kind != proc.EventExit {
		return nil, fmt.Errorf("sample: run stopped with %v, not exit", ev.Kind)
	}

	// The exit syscall retires without another loop-top poll; marks the
	// final instructions passed drain here, attributed to the exit state —
	// deterministically, so conservation and byte-identity both hold.
	for i, n := 0, cpu.SampleDrain(); i < n; i++ {
		capture()
	}

	prof.TotalCycles = cpu.Cycles
	prof.TotalInsts = cpu.Instret
	prof.ExitCode = p.ExitCode()
	if eng != nil && !opts.NoCounterVirt {
		comp := eng.Comp()
		prof.TotalCycles = uint64(int64(prof.TotalCycles) - comp.ExtraCycles)
		prof.TotalInsts = uint64(int64(prof.TotalInsts) - comp.ExtraInstret)
	}
	prof.DurationNanos = model.Nanos(prof.TotalCycles)
	return prof, nil
}

// FuncName symbolizes one original-program address: the containing
// function's name, func_<entry> for unnamed functions, or the hex address
// when no function contains it.
func (p *Profile) FuncName(pc uint64) string {
	if fn, ok := p.cfg.FuncContaining(pc); ok {
		if fn.Name != "" {
			return fn.Name
		}
		return fmt.Sprintf("func_%x", fn.Entry)
	}
	return fmt.Sprintf("0x%x", pc)
}

// aggregate groups identical stacks, preserving first-appearance order so
// the aggregation is deterministic.
type aggRow struct {
	stack []uint64
	count int64
}

func (p *Profile) aggregate() []aggRow {
	index := map[string]int{}
	var rows []aggRow
	var key []byte
	for _, s := range p.Samples {
		key = key[:0]
		for _, pc := range s.Stack {
			for sh := 0; sh < 64; sh += 8 {
				key = append(key, byte(pc>>sh))
			}
		}
		k := string(key)
		if i, ok := index[k]; ok {
			rows[i].count++
			continue
		}
		index[k] = len(rows)
		rows = append(rows, aggRow{stack: s.Stack, count: 1})
	}
	return rows
}
