package sample_test

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/obs"
	"rvdyn/internal/profile"
	"rvdyn/internal/profile/sample"
	"rvdyn/internal/workload"
)

func buildProg(t testing.TB, name string) (*elfrv.File, workload.Program) {
	t.Helper()
	for _, prog := range workload.Programs() {
		if prog.Name != name {
			continue
		}
		f, err := asm.Assemble(prog.Source, asm.Options{})
		if err != nil {
			t.Fatalf("assemble %s: %v", name, err)
		}
		return f, prog
	}
	t.Fatalf("no workload named %s", name)
	return nil, workload.Program{}
}

func pprofBytes(t testing.TB, p *sample.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatalf("WritePprof: %v", err)
	}
	return buf.Bytes()
}

func foldedBytes(t testing.TB, p *sample.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatalf("WriteFolded: %v", err)
	}
	return buf.Bytes()
}

// TestSamplePeriodRequired pins the one invalid configuration.
func TestSamplePeriodRequired(t *testing.T) {
	f, _ := buildProg(t, "fib")
	if _, err := sample.Run(f, sample.Options{}); err == nil {
		t.Fatal("Run with Period=0 succeeded, want error")
	}
}

// TestSampleByteIdenticalRuns pins the acceptance criterion: two runs of
// the same binary with the same period serialize to byte-identical pprof
// and folded output.
func TestSampleByteIdenticalRuns(t *testing.T) {
	for _, name := range []string{"matmul", "fib"} {
		t.Run(name, func(t *testing.T) {
			f, prog := buildProg(t, name)
			opts := sample.Options{Period: 500, Name: name}
			p1, err := sample.Run(f, opts)
			if err != nil {
				t.Fatal(err)
			}
			p2, err := sample.Run(f, opts)
			if err != nil {
				t.Fatal(err)
			}
			if p1.ExitCode != prog.ExitCode {
				t.Errorf("exit code = %d, want %d", p1.ExitCode, prog.ExitCode)
			}
			if len(p1.Samples) == 0 {
				t.Fatal("no samples captured")
			}
			if !bytes.Equal(pprofBytes(t, p1), pprofBytes(t, p2)) {
				t.Error("pprof output differs between two identical runs")
			}
			if !bytes.Equal(foldedBytes(t, p1), foldedBytes(t, p2)) {
				t.Error("folded output differs between two identical runs")
			}
		})
	}
}

// TestSampleEngineIdentity pins the tentpole's strongest property: the
// superblock fast path, the per-instruction slow path, and the DBI engine
// (sampling on the compensated clock, cache PCs mapped back through group
// bounds) all observe sample marks at bit-identical virtual times, so the
// three profiles serialize to the same bytes.
func TestSampleEngineIdentity(t *testing.T) {
	for _, name := range []string{"matmul", "fib"} {
		t.Run(name, func(t *testing.T) {
			f, _ := buildProg(t, name)
			profiles := map[sample.Engine]*sample.Profile{}
			for _, eng := range []sample.Engine{sample.EngineFast, sample.EngineSlow, sample.EngineDBI} {
				p, err := sample.Run(f, sample.Options{Period: 500, Engine: eng, Name: name})
				if err != nil {
					t.Fatalf("engine %v: %v", eng, err)
				}
				profiles[eng] = p
			}
			ref := profiles[sample.EngineFast]
			refBytes := pprofBytes(t, ref)
			for _, eng := range []sample.Engine{sample.EngineSlow, sample.EngineDBI} {
				p := profiles[eng]
				if p.TotalCycles != ref.TotalCycles {
					t.Errorf("engine %v: total cycles %d, fast %d", eng, p.TotalCycles, ref.TotalCycles)
				}
				if len(p.Samples) != len(ref.Samples) {
					t.Errorf("engine %v: %d samples, fast %d", eng, len(p.Samples), len(ref.Samples))
				}
				if !bytes.Equal(pprofBytes(t, p), refBytes) {
					t.Errorf("engine %v: pprof bytes differ from fast engine", eng)
				}
			}
		})
	}
}

// TestSampleMidTraceIdentity pins the trace-tier sampling contract: on a
// workload whose hot loop is trace-compiled, sample marks constantly land
// inside the span a trace pass would cover, so the dispatcher must defer
// that pass (trace dispatch and per-pass gates check worst-case pass cost
// against the next mark) and take the sample at the exact per-instruction
// boundary. The profile must serialize byte-identical across the traced
// fast path, the fast path with traces disabled, and the slow engine — at
// both a period several times a pass cost and one below it (where traces
// can never run a pass while a mark is pending).
func TestSampleMidTraceIdentity(t *testing.T) {
	f, _ := buildProg(t, "matmul")
	for _, period := range []uint64{499, 31} {
		reg := obs.NewRegistry()
		traced, err := sample.Run(f, sample.Options{Period: period, Obs: reg, Name: "matmul"})
		if err != nil {
			t.Fatal(err)
		}
		if period > 100 {
			// At the larger period traces must actually engage between
			// marks, or this test pins nothing.
			if passes := reg.Counter("emu.trace.passes").Load(); passes == 0 {
				t.Fatalf("period %d: no trace passes ran under the sampler", period)
			}
		}
		refBytes := pprofBytes(t, traced)
		for _, alt := range []sample.Options{
			{Period: period, NoTrace: true, Name: "matmul"},
			{Period: period, Engine: sample.EngineSlow, Name: "matmul"},
		} {
			p, err := sample.Run(f, alt)
			if err != nil {
				t.Fatal(err)
			}
			if p.TotalCycles != traced.TotalCycles {
				t.Errorf("period %d engine %v notrace=%v: total cycles %d, traced %d",
					period, alt.Engine, alt.NoTrace, p.TotalCycles, traced.TotalCycles)
			}
			if !bytes.Equal(pprofBytes(t, p), refBytes) {
				t.Errorf("period %d engine %v notrace=%v: pprof bytes differ from traced fast engine",
					period, alt.Engine, alt.NoTrace)
			}
		}
	}
}

// TestSampleConservation: the number of samples times the period is within
// one period of the total (compensated) cycle count, on every engine.
func TestSampleConservation(t *testing.T) {
	f, _ := buildProg(t, "matmul")
	const period = 700
	for _, eng := range []sample.Engine{sample.EngineFast, sample.EngineSlow, sample.EngineDBI} {
		p, err := sample.Run(f, sample.Options{Period: period, Engine: eng})
		if err != nil {
			t.Fatalf("engine %v: %v", eng, err)
		}
		covered := uint64(len(p.Samples)) * period
		if covered > p.TotalCycles || p.TotalCycles-covered >= period {
			t.Errorf("engine %v: %d samples * %d = %d cycles covered, total %d (must be within one period)",
				eng, len(p.Samples), period, covered, p.TotalCycles)
		}
	}
}

// TestSampleDBIOriginalAddresses: profiles taken under the DBI engine must
// contain only original-program addresses — never code-cache PCs.
func TestSampleDBIOriginalAddresses(t *testing.T) {
	f, _ := buildProg(t, "matmul")
	var lo, hi uint64
	for _, s := range f.Sections {
		if s.Flags&elfrv.SHFAlloc == 0 || s.Flags&elfrv.SHFExecinstr == 0 {
			continue
		}
		if lo == 0 || s.Addr < lo {
			lo = s.Addr
		}
		if s.Addr+s.Size() > hi {
			hi = s.Addr + s.Size()
		}
	}
	p, err := sample.Run(f, sample.Options{Period: 500, Engine: sample.EngineDBI})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range p.Samples {
		for _, pc := range s.Stack {
			if pc < lo || pc >= hi {
				t.Fatalf("sample %d: PC %#x outside executable image [%#x, %#x) — code-cache address leaked",
					i, pc, lo, hi)
			}
		}
	}
}

// TestSamplePprofRoundTrip: the emitted gzipped protobuf parses with the
// in-tree decoder and the decoded aggregates match the profile.
func TestSamplePprofRoundTrip(t *testing.T) {
	f, _ := buildProg(t, "matmul")
	const period = 500
	reg := obs.NewRegistry()
	p, err := sample.Run(f, sample.Options{Period: period, Obs: reg, Name: "matmul"})
	if err != nil {
		t.Fatal(err)
	}
	d, err := sample.ParsePprof(bytes.NewReader(pprofBytes(t, p)))
	if err != nil {
		t.Fatalf("ParsePprof: %v", err)
	}
	if got, want := d.TotalSamples(), int64(len(p.Samples)); got != want {
		t.Errorf("decoded sample count = %d, profile has %d", got, want)
	}
	if d.Period != period {
		t.Errorf("decoded period = %d, want %d", d.Period, period)
	}
	if want := []string{"samples/count", "cycles/count"}; len(d.SampleTypes) != 2 ||
		d.SampleTypes[0] != want[0] || d.SampleTypes[1] != want[1] {
		t.Errorf("sample types = %v, want %v", d.SampleTypes, want)
	}
	if d.PeriodType != "cycles/count" {
		t.Errorf("period type = %q, want cycles/count", d.PeriodType)
	}
	if got, want := d.Duration, int64(p.DurationNanos); got != want {
		t.Errorf("duration_nanos = %d, want %d", got, want)
	}
	for i, s := range d.Samples {
		if len(s.Values) != 2 {
			t.Fatalf("decoded sample %d has %d values, want 2", i, len(s.Values))
		}
		if s.Values[1] != s.Values[0]*period {
			t.Errorf("decoded sample %d: cycles %d != count %d * period", i, s.Values[1], s.Values[0])
		}
		if len(s.LocationIDs) == 0 {
			t.Errorf("decoded sample %d has no locations", i)
		}
		for _, id := range s.LocationIDs {
			loc, ok := d.Locations[id]
			if !ok {
				t.Fatalf("decoded sample %d references unknown location %d", i, id)
			}
			if len(loc.FunctionIDs) != 1 {
				t.Fatalf("location %d has %d function lines, want 1", id, len(loc.FunctionIDs))
			}
			if _, ok := d.Functions[loc.FunctionIDs[0]]; !ok {
				t.Fatalf("location %d references unknown function %d", id, loc.FunctionIDs[0])
			}
		}
	}
	// The leaf attribution in the decoded profile matches the in-memory top
	// table's self counts.
	totals := d.FuncTotals()
	for _, row := range p.Top(0) {
		if row.Self == 0 {
			continue
		}
		if totals[row.Name] != row.Self {
			t.Errorf("decoded self count for %s = %d, want %d", row.Name, totals[row.Name], row.Self)
		}
	}
	// Sampler counters fed the shared registry.
	if got := reg.Counter("profile.samples").Load(); got != uint64(len(p.Samples)) {
		t.Errorf("profile.samples counter = %d, want %d", got, len(p.Samples))
	}
}

// TestSampleFoldedLineCount: the folded file has exactly one line per
// captured sample, each ending in " 1", frames root-first.
func TestSampleFoldedLineCount(t *testing.T) {
	f, _ := buildProg(t, "fib")
	p, err := sample.Run(f, sample.Options{Period: 300})
	if err != nil {
		t.Fatal(err)
	}
	folded := foldedBytes(t, p)
	sc := bufio.NewScanner(bytes.NewReader(folded))
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasSuffix(line, " 1") {
			t.Errorf("folded line %d does not end in count 1: %q", lines, line)
		}
		lines++
	}
	if lines != len(p.Samples) {
		t.Errorf("folded line count = %d, want %d (one per sample)", lines, len(p.Samples))
	}
	// The recursive workload must produce at least one multi-frame stack
	// with the recursing function repeated.
	if !bytes.Contains(folded, []byte("fib;fib")) {
		t.Error("no folded stack shows fib recursing (fib;fib)")
	}
}

// TestSampleTopAgreesWithExact cross-checks the sampler against the exact
// instrumentation-based profiler: on matmul both must attribute the
// majority of the run to the multiply kernel.
func TestSampleTopAgreesWithExact(t *testing.T) {
	f, prog := buildProg(t, "matmul")
	sp, err := sample.Run(f, sample.Options{Period: 500})
	if err != nil {
		t.Fatal(err)
	}
	rows := sp.Top(0)
	if len(rows) == 0 {
		t.Fatal("no top rows")
	}
	if rows[0].Name != "multiply" {
		t.Errorf("sampled hottest function = %s, want multiply (rows %+v)", rows[0].Name, rows)
	}
	if 2*rows[0].Cum < int64(len(sp.Samples)) {
		t.Errorf("multiply cumulative %d/%d samples, want majority", rows[0].Cum, len(sp.Samples))
	}

	exact, err := profile.Run(f, profile.Options{Funcs: prog.Funcs, Mode: codegen.ModeDeadRegister})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Rows) == 0 || exact.Rows[0].Name != rows[0].Name {
		t.Errorf("exact profiler hottest = %s, sampled hottest = %s — attribution disagrees",
			exact.Rows[0].Name, rows[0].Name)
	}
}
