package sample

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteFolded writes one line per sample in flamegraph.pl/speedscope folded
// form: semicolon-joined frames root-first, a space, and the count (always
// 1 — one line per captured sample, so the file's line count equals the
// profile's total sample count).
func (p *Profile) WriteFolded(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, s := range p.Samples {
		for i := len(s.Stack) - 1; i >= 0; i-- {
			if _, err := bw.WriteString(p.FuncName(s.Stack[i])); err != nil {
				return err
			}
			if i > 0 {
				if err := bw.WriteByte(';'); err != nil {
					return err
				}
			}
		}
		if _, err := bw.WriteString(" 1\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// TopRow is one function's attribution in the top-N table.
type TopRow struct {
	Name string
	// Self counts samples whose leaf frame is in this function.
	Self int64
	// Cum counts samples with this function anywhere on the stack (each
	// sample counted once even if the function recurses).
	Cum int64
}

// Top returns up to n functions ordered by Self count (descending), ties
// broken by Cum then name so the table is deterministic.
func (p *Profile) Top(n int) []TopRow {
	self := map[string]int64{}
	cum := map[string]int64{}
	var order []string
	seen := map[string]bool{}
	onStack := map[string]bool{}
	for _, s := range p.Samples {
		if len(s.Stack) == 0 {
			continue
		}
		for k := range onStack {
			delete(onStack, k)
		}
		for i, pc := range s.Stack {
			name := p.FuncName(pc)
			if !seen[name] {
				seen[name] = true
				order = append(order, name)
			}
			if i == 0 {
				self[name]++
			}
			if !onStack[name] {
				onStack[name] = true
				cum[name]++
			}
		}
	}
	rows := make([]TopRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, TopRow{Name: name, Self: self[name], Cum: cum[name]})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Self != rows[j].Self {
			return rows[i].Self > rows[j].Self
		}
		if rows[i].Cum != rows[j].Cum {
			return rows[i].Cum > rows[j].Cum
		}
		return rows[i].Name < rows[j].Name
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// WriteTop renders the top-N table with self/cumulative counts and
// percentages of total samples.
func (p *Profile) WriteTop(w io.Writer, n int) error {
	total := int64(len(p.Samples))
	if _, err := fmt.Fprintf(w, "%-24s %10s %7s %10s %7s\n", "func", "self", "self%", "cum", "cum%"); err != nil {
		return err
	}
	pct := func(v int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	for _, r := range p.Top(n) {
		if _, err := fmt.Fprintf(w, "%-24s %10d %6.2f%% %10d %6.2f%%\n",
			r.Name, r.Self, pct(r.Self), r.Cum, pct(r.Cum)); err != nil {
			return err
		}
	}
	return nil
}
