package sample

import (
	"compress/gzip"
	"fmt"
	"io"
)

// Decoded is the parsed view of a pprof profile.proto — enough structure
// to validate framing and cross-check aggregates against the Profile that
// produced it (CI round-trips every emitted profile through this).
type Decoded struct {
	SampleTypes []string // "type/unit" per sample_type entry
	Samples     []DecodedSample
	Locations   map[uint64]DecodedLocation
	Functions   map[uint64]string // function id -> name
	StringTable []string
	Period      int64
	PeriodType  string
	Duration    int64 // duration_nanos
}

// DecodedSample is one Sample message.
type DecodedSample struct {
	LocationIDs []uint64
	Values      []int64
}

// DecodedLocation is one Location message.
type DecodedLocation struct {
	Address     uint64
	FunctionIDs []uint64
}

// TotalSamples sums the first value (the sample count) across samples.
func (d *Decoded) TotalSamples() int64 {
	var n int64
	for _, s := range d.Samples {
		if len(s.Values) > 0 {
			n += s.Values[0]
		}
	}
	return n
}

// FuncTotals aggregates the first value by leaf-location function name.
func (d *Decoded) FuncTotals() map[string]int64 {
	out := map[string]int64{}
	for _, s := range d.Samples {
		if len(s.LocationIDs) == 0 || len(s.Values) == 0 {
			continue
		}
		loc := d.Locations[s.LocationIDs[0]]
		name := fmt.Sprintf("0x%x", loc.Address)
		if len(loc.FunctionIDs) > 0 {
			name = d.Functions[loc.FunctionIDs[0]]
		}
		out[name] += s.Values[0]
	}
	return out
}

// ParsePprof parses a gzipped pprof profile.proto, validating wire framing
// (every varint, length prefix, and nested message must be well-formed and
// the string table must start with "").
func ParsePprof(r io.Reader) (*Decoded, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("pprof: not gzip: %w", err)
	}
	raw, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("pprof: gunzip: %w", err)
	}
	if err := zr.Close(); err != nil {
		return nil, err
	}
	d := &Decoded{
		Locations: map[uint64]DecodedLocation{},
		Functions: map[uint64]string{},
	}
	// String references are indices into a table that may appear after its
	// referents in the stream; record the indices now, resolve after.
	var pending struct {
		funcs  map[uint64]uint64 // function id -> name string index
		types  [][2]uint64       // sample_type (type idx, unit idx)
		period *[2]uint64        // period_type (type idx, unit idx)
	}
	pending.funcs = map[uint64]uint64{}
	err = walkProto(raw, func(field int, wire int, v uint64, b []byte) error {
		switch field {
		case pfSampleType:
			typIdx, unitIdx, err := parseValueType(b)
			if err != nil {
				return err
			}
			pending.types = append(pending.types, [2]uint64{typIdx, unitIdx})
			d.SampleTypes = append(d.SampleTypes, "")
		case pfSample:
			s, err := parseSample(b)
			if err != nil {
				return err
			}
			d.Samples = append(d.Samples, s)
		case pfLocation:
			id, loc, err := parseLocation(b)
			if err != nil {
				return err
			}
			d.Locations[id] = loc
		case pfFunction:
			var id, nameIdx uint64
			err := walkProto(b, func(f, w int, v uint64, sub []byte) error {
				switch f {
				case 1:
					id = v
				case 2:
					nameIdx = v
				}
				return nil
			})
			if err != nil {
				return err
			}
			pending.funcs[id] = nameIdx
		case pfStringTable:
			if wire != 2 {
				return fmt.Errorf("pprof: string_table field has wire type %d", wire)
			}
			d.StringTable = append(d.StringTable, string(b))
		case pfDurationNanos:
			d.Duration = int64(v)
		case pfPeriodType:
			typIdx, unitIdx, err := parseValueType(b)
			if err != nil {
				return err
			}
			pending.period = &[2]uint64{typIdx, unitIdx}
		case pfPeriod:
			d.Period = int64(v)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(d.StringTable) == 0 || d.StringTable[0] != "" {
		return nil, fmt.Errorf("pprof: string table must start with the empty string")
	}
	// Function names and the sample-type strings were recorded as indices
	// while the table was still streaming in; resolve them now.
	resolve := func(idx uint64) (string, error) {
		if idx >= uint64(len(d.StringTable)) {
			return "", fmt.Errorf("pprof: string index %d out of range (%d strings)", idx, len(d.StringTable))
		}
		return d.StringTable[idx], nil
	}
	for id, idx := range pending.funcs {
		name, err := resolve(idx)
		if err != nil {
			return nil, err
		}
		d.Functions[id] = name
	}
	for i, pair := range pending.types {
		typ, err := resolve(pair[0])
		if err != nil {
			return nil, err
		}
		unit, err := resolve(pair[1])
		if err != nil {
			return nil, err
		}
		d.SampleTypes[i] = typ + "/" + unit
	}
	if pending.period != nil {
		typ, err := resolve(pending.period[0])
		if err != nil {
			return nil, err
		}
		unit, err := resolve(pending.period[1])
		if err != nil {
			return nil, err
		}
		d.PeriodType = typ + "/" + unit
	}
	return d, nil
}

// walkProto iterates one message's fields. Length-delimited fields pass
// their bytes in b; varint fields pass the value in v.
func walkProto(b []byte, visit func(field, wire int, v uint64, b []byte) error) error {
	for len(b) > 0 {
		key, n, err := uvarint(b)
		if err != nil {
			return err
		}
		b = b[n:]
		field, wire := int(key>>3), int(key&7)
		switch wire {
		case 0: // varint
			v, n, err := uvarint(b)
			if err != nil {
				return err
			}
			b = b[n:]
			if err := visit(field, wire, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(b) < 8 {
				return fmt.Errorf("pprof: truncated fixed64 in field %d", field)
			}
			var v uint64
			for i := 7; i >= 0; i-- {
				v = v<<8 | uint64(b[i])
			}
			b = b[8:]
			if err := visit(field, wire, v, nil); err != nil {
				return err
			}
		case 2: // length-delimited
			l, n, err := uvarint(b)
			if err != nil {
				return err
			}
			b = b[n:]
			if l > uint64(len(b)) {
				return fmt.Errorf("pprof: field %d length %d exceeds remaining %d bytes", field, l, len(b))
			}
			if err := visit(field, wire, 0, b[:l]); err != nil {
				return err
			}
			b = b[l:]
		case 5: // fixed32
			if len(b) < 4 {
				return fmt.Errorf("pprof: truncated fixed32 in field %d", field)
			}
			v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
			b = b[4:]
			if err := visit(field, wire, v, nil); err != nil {
				return err
			}
		default:
			return fmt.Errorf("pprof: unsupported wire type %d in field %d", wire, field)
		}
	}
	return nil
}

func uvarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("pprof: truncated or oversized varint")
}

// packedUints parses a packed (or singly-encoded) repeated uint64 field.
func packedUints(b []byte) ([]uint64, error) {
	var out []uint64
	for len(b) > 0 {
		v, n, err := uvarint(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = b[n:]
	}
	return out, nil
}

func parseSample(b []byte) (DecodedSample, error) {
	var s DecodedSample
	err := walkProto(b, func(field, wire int, v uint64, sub []byte) error {
		switch field {
		case 1:
			if wire == 0 {
				s.LocationIDs = append(s.LocationIDs, v)
				return nil
			}
			ids, err := packedUints(sub)
			if err != nil {
				return err
			}
			s.LocationIDs = append(s.LocationIDs, ids...)
		case 2:
			if wire == 0 {
				s.Values = append(s.Values, int64(v))
				return nil
			}
			vals, err := packedUints(sub)
			if err != nil {
				return err
			}
			for _, u := range vals {
				s.Values = append(s.Values, int64(u))
			}
		}
		return nil
	})
	return s, err
}

func parseLocation(b []byte) (uint64, DecodedLocation, error) {
	var id uint64
	var loc DecodedLocation
	err := walkProto(b, func(field, wire int, v uint64, sub []byte) error {
		switch field {
		case 1:
			id = v
		case 3:
			loc.Address = v
		case 4: // Line
			return walkProto(sub, func(f, w int, lv uint64, _ []byte) error {
				if f == 1 {
					loc.FunctionIDs = append(loc.FunctionIDs, lv)
				}
				return nil
			})
		}
		return nil
	})
	return id, loc, err
}

func parseValueType(b []byte) (typIdx, unitIdx uint64, err error) {
	err = walkProto(b, func(field, wire int, v uint64, _ []byte) error {
		switch field {
		case 1:
			typIdx = v
		case 2:
			unitIdx = v
		}
		return nil
	})
	return typIdx, unitIdx, err
}
