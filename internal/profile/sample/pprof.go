package sample

import (
	"compress/gzip"
	"io"
)

// WritePprof writes the profile as a gzipped pprof profile.proto, the
// format `go tool pprof` and the pprof web UI consume. The encoding is
// stdlib-only (a hand-rolled protobuf varint writer) and fully
// deterministic: no wall-clock timestamp is recorded (time_nanos stays 0;
// duration_nanos comes from the virtual clock), string/function/location
// tables are built in first-appearance order, and the gzip header carries
// no mod time — so equal profiles serialize to equal bytes.
//
// Layout (profile.proto field numbers):
//
//	sample_type:  [{samples, count}, {cycles, count}]
//	sample:       one per unique stack, values [n, n*period]
//	mapping:      the executable image span
//	location:     one per unique PC, address + one Line -> function
//	function:     one per unique symbol name
//	period_type:  {cycles, count}, period = Period
func (p *Profile) WritePprof(w io.Writer) error {
	zw := gzip.NewWriter(w)
	if _, err := zw.Write(p.marshalPprof()); err != nil {
		return err
	}
	return zw.Close()
}

// Profile message field numbers (pprof profile.proto).
const (
	pfSampleType    = 1
	pfSample        = 2
	pfMapping       = 3
	pfLocation      = 4
	pfFunction      = 5
	pfStringTable   = 6
	pfDurationNanos = 10
	pfPeriodType    = 11
	pfPeriod        = 12
)

func (p *Profile) marshalPprof() []byte {
	var (
		out     protoBuf
		strings = newStringTable()
	)
	// sample_type: [{samples, count}, {cycles, count}].
	out.message(pfSampleType, valueType(strings, "samples", "count"))
	out.message(pfSampleType, valueType(strings, "cycles", "count"))

	// Locations and functions are interned in first-appearance order over
	// the aggregated samples, so ids are deterministic.
	type locKey = uint64
	locID := map[locKey]uint64{}
	funcID := map[string]uint64{}
	var locs []protoBuf
	var funcs []protoBuf

	internFunc := func(name string) uint64 {
		if id, ok := funcID[name]; ok {
			return id
		}
		id := uint64(len(funcs) + 1)
		funcID[name] = id
		var fb protoBuf
		fb.uvarintField(1, id)
		fb.uvarintField(2, uint64(strings.intern(name))) // name
		fb.uvarintField(3, uint64(strings.intern(name))) // system_name
		funcs = append(funcs, fb)
		return id
	}
	internLoc := func(pc uint64) uint64 {
		if id, ok := locID[pc]; ok {
			return id
		}
		id := uint64(len(locs) + 1)
		locID[pc] = id
		var line protoBuf
		line.uvarintField(1, internFunc(p.FuncName(pc)))
		var lb protoBuf
		lb.uvarintField(1, id)
		lb.uvarintField(2, 1) // mapping_id
		lb.uvarintField(3, pc)
		lb.messageRaw(4, line.b)
		locs = append(locs, lb)
		return id
	}

	for _, row := range p.aggregate() {
		var ids protoBuf
		for _, pc := range row.stack {
			ids.uvarint(internLoc(pc))
		}
		var vals protoBuf
		vals.uvarint(uint64(row.count))
		vals.uvarint(uint64(row.count) * p.Period)
		var sb protoBuf
		sb.messageRaw(1, ids.b)  // packed location_id
		sb.messageRaw(2, vals.b) // packed value
		out.messageRaw(pfSample, sb.b)
	}

	var mb protoBuf
	mb.uvarintField(1, 1) // id
	mb.uvarintField(2, p.execLo)
	mb.uvarintField(3, p.execHi)
	mb.uvarintField(5, uint64(strings.intern(p.name)))
	out.messageRaw(pfMapping, mb.b)

	for _, lb := range locs {
		out.messageRaw(pfLocation, lb.b)
	}
	for _, fb := range funcs {
		out.messageRaw(pfFunction, fb.b)
	}
	// period_type strings intern before the table serializes.
	pt := valueType(strings, "cycles", "count")
	for _, s := range strings.list {
		out.stringField(pfStringTable, s)
	}
	out.uvarintField(pfDurationNanos, p.DurationNanos)
	out.messageRaw(pfPeriodType, pt.b)
	out.uvarintField(pfPeriod, p.Period)
	return out.b
}

func valueType(st *stringTable, typ, unit string) protoBuf {
	var b protoBuf
	b.uvarintField(1, uint64(st.intern(typ)))
	b.uvarintField(2, uint64(st.intern(unit)))
	return b
}

// stringTable interns strings in first-use order; index 0 is always "".
type stringTable struct {
	index map[string]int64
	list  []string
}

func newStringTable() *stringTable {
	return &stringTable{index: map[string]int64{"": 0}, list: []string{""}}
}

func (st *stringTable) intern(s string) int64 {
	if i, ok := st.index[s]; ok {
		return i
	}
	i := int64(len(st.list))
	st.index[s] = i
	st.list = append(st.list, s)
	return i
}

// protoBuf is a minimal protobuf wire-format writer: varints, and
// length-delimited fields for strings, packed scalars, and sub-messages.
type protoBuf struct {
	b []byte
}

func (p *protoBuf) uvarint(v uint64) {
	for v >= 0x80 {
		p.b = append(p.b, byte(v)|0x80)
		v >>= 7
	}
	p.b = append(p.b, byte(v))
}

func (p *protoBuf) key(field, wire int) {
	p.uvarint(uint64(field)<<3 | uint64(wire))
}

// uvarintField writes a varint-typed field, omitting it when zero (proto3
// default-value semantics, which the decoder mirrors).
func (p *protoBuf) uvarintField(field int, v uint64) {
	if v == 0 {
		return
	}
	p.key(field, 0)
	p.uvarint(v)
}

func (p *protoBuf) stringField(field int, s string) {
	p.key(field, 2)
	p.uvarint(uint64(len(s)))
	p.b = append(p.b, s...)
}

// messageRaw writes raw bytes as a length-delimited field (sub-message or
// packed repeated scalar).
func (p *protoBuf) messageRaw(field int, raw []byte) {
	p.key(field, 2)
	p.uvarint(uint64(len(raw)))
	p.b = append(p.b, raw...)
}

func (p *protoBuf) message(field int, m protoBuf) {
	p.messageRaw(field, m.b)
}
