// Package profile is a sampling-free function profiler built from the
// toolkit's own instrumentation primitives (the "Performance" tool family of
// the paper's title): call counts come from Increment snippets patched in at
// function entry, and cycle attribution comes from trap probes at the
// relocated entry and exit instructions driving a host-side shadow stack.
//
// Attribution is exclusive: the interval between two consecutive probe
// events is charged to the function on top of the shadow stack, so every
// retired cycle lands in exactly one row and the table's total equals the
// emulator's cycle counter exactly — including under recursion, where a
// frame's self-time excludes its callees' time. (An inclusive design that
// snapshots the cycle CSR at entry and subtracts at exit double-counts
// nested calls and cannot sum to the total.)
package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
	"rvdyn/internal/proc"
	"rvdyn/internal/snippet"
)

// Options configures one profiling run.
type Options struct {
	// Model is the cost model; nil means emu.P550().
	Model *emu.CostModel
	// Funcs lists the functions to profile. Empty profiles every named
	// function except the one containing the ELF entry point (which becomes
	// the residual root row).
	Funcs []string
	// Mode is the snippet register-allocation strategy for the call-count
	// instrumentation.
	Mode codegen.Mode
	// Obs, when non-nil, also attaches emulator metrics to the run and
	// records profiler counters (profile.probe_hits).
	Obs *obs.Registry
	// Trace, when non-nil, records one span per profiled call on TraceTID,
	// timestamped on the guest's virtual clock, so the call tree renders in
	// Perfetto exactly as it nested at runtime.
	Trace    *obs.Tracer
	TraceTID int
	// MaxInst bounds the run (0 = unlimited).
	MaxInst uint64
	// NoCounterVirt (RunDBI only) disables counter virtualization: the
	// report's totals and any guest rdcycle/rdinstret reads expose the raw
	// translation-inflated counters instead of native-identical values.
	NoCounterVirt bool
	// NoTrace disables trace compilation of hot superblock chains, for
	// A/B overhead comparisons of the trace tier.
	NoTrace bool
}

// Row is one function's line in the profile.
type Row struct {
	Name   string
	Calls  uint64
	Cycles uint64 // exclusive (self) cycles
}

// Report is a completed profile.
type Report struct {
	// Rows, descending by exclusive cycles. The root row (the entry
	// function) carries every cycle not spent inside a profiled function.
	Rows []Row
	// TotalCycles is the emulator's retired-cycle counter at exit; the sum
	// of all rows equals it exactly.
	TotalCycles uint64
	// TotalInsts is the retired-instruction counter at exit.
	TotalInsts uint64
	ExitCode   int
}

// String renders the profile as the table `rvdyn profile` prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %10s %14s %7s\n", "FUNCTION", "CALLS", "CYCLES", "CYC%")
	for _, row := range r.Rows {
		pct := 0.0
		if r.TotalCycles > 0 {
			pct = 100 * float64(row.Cycles) / float64(r.TotalCycles)
		}
		fmt.Fprintf(&b, "%-20s %10d %14d %6.2f%%\n", row.Name, row.Calls, row.Cycles, pct)
	}
	fmt.Fprintf(&b, "%-20s %10s %14d %6.2f%%\n", "total", "", r.TotalCycles, 100.0)
	return b.String()
}

// frame is one live call on the shadow stack.
type frame struct {
	idx   int    // row index
	start uint64 // cycle count at entry (for the trace span)
}

// Run profiles one binary to completion.
func Run(f *elfrv.File, opts Options) (*Report, error) {
	model := opts.Model
	if model == nil {
		model = emu.P550()
	}
	bin, err := core.FromFile(f)
	if err != nil {
		return nil, err
	}
	p, err := bin.Launch(model)
	if err != nil {
		return nil, err
	}
	p.CPU().NoTrace = opts.NoTrace
	if opts.Obs != nil {
		p.CPU().Obs = emu.NewMetrics(opts.Obs)
	}

	// The root row absorbs time outside every profiled function; it is the
	// function holding the ELF entry point (conventionally _start).
	rootName := "_start"
	rootFn, haveRoot := bin.CFG.FuncContaining(f.Entry)
	if haveRoot {
		rootName = rootFn.Name
	}

	funcs := opts.Funcs
	if len(funcs) == 0 {
		for _, fn := range bin.Functions() {
			if fn.Name == "" || (haveRoot && fn.Entry == rootFn.Entry) {
				continue
			}
			funcs = append(funcs, fn.Name)
		}
		sort.Strings(funcs)
	}

	rows := make([]Row, 0, len(funcs)+1)
	rows = append(rows, Row{Name: rootName, Calls: 1})
	const rootIdx = 0

	probeHits := opts.Obs.Counter("profile.probe_hits")

	// Shadow stack: probes attribute the cycles since the previous event to
	// the current top, then push (entry) or pop (exit). lastMark starts at
	// the launch-time cycle count, so the intervals partition the whole run.
	var stack []frame
	lastMark := p.CPU().Cycles
	attribute := func() {
		now := p.CPU().Cycles
		top := rootIdx
		if len(stack) > 0 {
			top = stack[len(stack)-1].idx
		}
		rows[top].Cycles += now - lastMark
		lastMark = now
	}

	callVars := make([]*snippet.Var, 0, len(funcs))
	for _, name := range funcs {
		fn, err := bin.FindFunction(name)
		if err != nil {
			return nil, err
		}
		idx := len(rows)
		rows = append(rows, Row{Name: name})

		// Call counting runs inside the mutatee: an Increment snippet at the
		// (relocated) function entry, the paper's canonical instrumentation.
		v := p.NewVar("prof_calls_"+name, 8)
		callVars = append(callVars, v)
		pts := []snippet.Point{snippet.FuncEntry(fn)}
		if _, err := p.InstrumentFunction(fn, pts, snippet.Increment(v), opts.Mode); err != nil {
			return nil, fmt.Errorf("profile: instrumenting %s: %w", name, err)
		}

		// Cycle attribution is host-side: probes at the RELOCATED entry and
		// exit instructions (the originals never execute once the entry is
		// patched) drive the shadow stack.
		entryAddr, ok := p.RelocatedAddr(fn.Entry)
		if !ok {
			return nil, fmt.Errorf("profile: %s has no relocated entry", name)
		}
		if err := p.Probe(entryAddr, func(*core.Process) {
			probeHits.Inc()
			attribute()
			stack = append(stack, frame{idx: idx, start: p.CPU().Cycles})
		}); err != nil {
			return nil, err
		}
		for _, ex := range snippet.FuncExits(fn) {
			exitAddr, ok := p.RelocatedAddr(ex.Addr)
			if !ok {
				return nil, fmt.Errorf("profile: %s: exit %#x not relocated", name, ex.Addr)
			}
			if err := p.Probe(exitAddr, func(*core.Process) {
				probeHits.Inc()
				attribute()
				if n := len(stack); n > 0 && stack[n-1].idx == idx {
					fr := stack[n-1]
					stack = stack[:n-1]
					if opts.Trace != nil {
						// Span on the guest's virtual clock: start/duration
						// derive from the cycle counter through the cost
						// model, so nesting matches the real call tree.
						start := time.Duration(model.Nanos(fr.start))
						end := time.Duration(model.Nanos(p.CPU().Cycles))
						opts.Trace.Complete(opts.TraceTID, name, "profile.call",
							start, end-start, nil)
					}
				}
			}); err != nil {
				return nil, err
			}
		}
	}

	ev, err := p.ContinueBudget(opts.MaxInst)
	if err != nil {
		return nil, err
	}
	if ev.Kind != proc.EventExit {
		return nil, fmt.Errorf("profile: run stopped with %v, not exit", ev.Kind)
	}
	attribute() // residual cycles since the last probe go to the current top

	for i := range funcs {
		calls, err := p.ReadVar(callVars[i])
		if err != nil {
			return nil, err
		}
		rows[i+1].Calls = calls
	}

	rep := &Report{
		TotalCycles: p.CPU().Cycles,
		TotalInsts:  p.CPU().Instret,
		ExitCode:    p.ExitCode(),
	}
	rep.Rows = rows
	sort.SliceStable(rep.Rows, func(i, j int) bool { return rep.Rows[i].Cycles > rep.Rows[j].Cycles })
	return rep, nil
}
