package profile

import (
	"fmt"
	"sort"

	"rvdyn/internal/core"
	"rvdyn/internal/dbi"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/proc"
	"rvdyn/internal/snippet"
)

// RunDBI profiles one binary to completion through the dynamic binary
// instrumentation engine instead of the static rewriter: call-count
// Increment snippets are woven into the code cache at translation time, so
// attaching requires no binary rewrite and works on code the static analyzer
// cannot relocate (including self-modifying code).
//
// The trade-off is cycle attribution. Run drives a host-side shadow stack
// from trap probes, but translated code executes in chained cache blocks
// precisely to avoid host round trips, so RunDBI has no per-call events to
// attribute intervals with: every cycle lands in the root row and the
// per-function Cycles columns are zero. Call counts are exact and match Run.
func RunDBI(f *elfrv.File, opts Options) (*Report, error) {
	model := opts.Model
	if model == nil {
		model = emu.P550()
	}
	bin, err := core.FromFile(f)
	if err != nil {
		return nil, err
	}
	p, err := proc.Launch(f, model)
	if err != nil {
		return nil, err
	}
	p.CPU().NoTrace = opts.NoTrace
	if opts.Obs != nil {
		p.CPU().Obs = emu.NewMetrics(opts.Obs)
	}
	var m dbi.Metrics
	if opts.Obs != nil {
		m = dbi.NewMetrics(opts.Obs)
	}
	e, err := dbi.Attach(p, f, dbi.Options{Mode: opts.Mode, Obs: m, NoCounterVirt: opts.NoCounterVirt})
	if err != nil {
		return nil, err
	}

	rootName := "_start"
	rootFn, haveRoot := bin.CFG.FuncContaining(f.Entry)
	if haveRoot {
		rootName = rootFn.Name
	}
	funcs := opts.Funcs
	if len(funcs) == 0 {
		for _, fn := range bin.Functions() {
			if fn.Name == "" || (haveRoot && fn.Entry == rootFn.Entry) {
				continue
			}
			funcs = append(funcs, fn.Name)
		}
		sort.Strings(funcs)
	}

	rows := make([]Row, 0, len(funcs)+1)
	rows = append(rows, Row{Name: rootName, Calls: 1})

	callVars := make([]*snippet.Var, 0, len(funcs))
	for _, name := range funcs {
		fn, err := bin.FindFunction(name)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{Name: name})
		v := e.NewVar("prof_calls_"+name, 8)
		callVars = append(callVars, v)
		if err := e.Probe(fn, snippet.Increment(v)); err != nil {
			return nil, fmt.Errorf("profile: probing %s: %w", name, err)
		}
	}

	ev, err := e.ContinueBudget(opts.MaxInst)
	if err != nil {
		return nil, err
	}
	if ev.Kind != proc.EventExit {
		return nil, fmt.Errorf("profile: dbi run stopped with %v, not exit", ev.Kind)
	}

	for i := range funcs {
		calls, err := e.ReadVar(callVars[i])
		if err != nil {
			return nil, err
		}
		rows[i+1].Calls = calls
	}

	// Report the virtualized (compensated) totals: the cycles and
	// instructions the native program retired, with the code-cache and
	// probe overhead subtracted out by the per-translation deltas. With
	// NoCounterVirt the raw (inflated) counters are reported instead —
	// their difference is the true dynamic-mode overhead.
	rep := &Report{
		TotalCycles: p.CPU().Cycles,
		TotalInsts:  p.CPU().Instret,
		ExitCode:    p.ExitCode(),
	}
	if !opts.NoCounterVirt {
		comp := e.Comp()
		rep.TotalCycles = uint64(int64(rep.TotalCycles) - comp.ExtraCycles)
		rep.TotalInsts = uint64(int64(rep.TotalInsts) - comp.ExtraInstret)
	}
	// All cycles charge to the root row so the table still sums to the total.
	rows[0].Cycles = rep.TotalCycles
	rep.Rows = rows
	sort.SliceStable(rep.Rows, func(i, j int) bool { return rep.Rows[i].Cycles > rep.Rows[j].Cycles })
	return rep, nil
}
