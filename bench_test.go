// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations DESIGN.md calls out. Each Table benchmark runs the
// Section 4.1 workload under one cell of the Section 4.3 table and reports
// the virtual-time metrics that correspond to the paper's wall-clock
// seconds (see EXPERIMENTS.md for the recorded comparison):
//
//	virtual_ns/run   application-measured elapsed time of the timed loop
//	overhead_%       that run's overhead over the matching Base cell
//
// Run with:
//
//	go test -bench=. -benchmem
package rvdyn_test

import (
	"testing"

	"rvdyn/internal/asm"
	"rvdyn/internal/codegen"
	"rvdyn/internal/core"
	"rvdyn/internal/elfrv"
	"rvdyn/internal/emu"
	"rvdyn/internal/obs"
	"rvdyn/internal/parse"
	"rvdyn/internal/patch"
	"rvdyn/internal/pipeline"
	"rvdyn/internal/proc"
	"rvdyn/internal/riscv"
	"rvdyn/internal/snippet"
	"rvdyn/internal/symtab"
	"rvdyn/internal/workload"
)

// Benchmark workload scale: large enough that per-block instrumentation
// dominates, small enough for iteration. The paper uses n=100; overhead
// percentages are scale-independent (they depend on work per block, not on
// block count).
const (
	benchN    = 32
	benchReps = 1
)

type tableCell struct {
	points string // "", "entry", "blocks"
	mode   codegen.Mode
	model  func() *emu.CostModel
}

// buildCell assembles and (if requested) instruments the workload.
func buildCell(b *testing.B, cell tableCell) *elfrv.File {
	b.Helper()
	file, err := workload.BuildMatmul(benchN, benchReps, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if cell.points == "" {
		return file
	}
	bin, err := core.FromFile(file)
	if err != nil {
		b.Fatal(err)
	}
	fn, err := bin.FindFunction("multiply")
	if err != nil {
		b.Fatal(err)
	}
	m := bin.NewMutator(cell.mode)
	counter := m.NewVar("bench_counter", 8)
	var pts []snippet.Point
	if cell.points == "entry" {
		pts = []snippet.Point{snippet.FuncEntry(fn)}
	} else {
		pts = snippet.BlockEntries(fn)
	}
	for _, pt := range pts {
		if err := m.InsertSnippet(pt, snippet.Increment(counter)); err != nil {
			b.Fatal(err)
		}
	}
	out, err := m.Rewrite()
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// runCell executes the built binary once and returns the app-measured
// elapsed virtual nanoseconds.
func runCell(b *testing.B, file *elfrv.File, model *emu.CostModel) uint64 {
	b.Helper()
	cpu, err := emu.New(file, model)
	if err != nil {
		b.Fatal(err)
	}
	if r := cpu.Run(0); r != emu.StopExit {
		b.Fatalf("stopped: %v (%v)", r, cpu.LastTrap())
	}
	sym, ok := file.Symbol("elapsed_ns")
	if !ok {
		b.Fatal("no elapsed_ns symbol")
	}
	ns, err := cpu.Mem.Read64(sym.Value)
	if err != nil {
		b.Fatal(err)
	}
	return ns
}

// benchTable is the harness for one cell of the Section 4.3 table.
func benchTable(b *testing.B, cell tableCell) {
	if testing.Short() {
		b.Skip("full-table cell: skipped in -short mode")
	}
	file := buildCell(b, cell)
	baseFile := file
	if cell.points != "" {
		baseFile = buildCell(b, tableCell{mode: cell.mode, model: cell.model})
	}
	var ns, baseNS uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ns = runCell(b, file, cell.model())
	}
	b.StopTimer()
	baseNS = runCell(b, baseFile, cell.model())
	b.ReportMetric(float64(ns), "virtual_ns/run")
	if cell.points != "" {
		b.ReportMetric(100*(float64(ns)/float64(baseNS)-1), "overhead_%")
	}
}

// The six cells of the Section 4.3 table. The x86 column pairs the
// spill-always codegen mode with the x86-comparator cost model; the RISC-V
// column pairs the dead-register mode with the P550 model (DESIGN.md).

func BenchmarkTableBaseX86(b *testing.B) {
	benchTable(b, tableCell{mode: codegen.ModeSpillAlways, model: emu.X86Comparator})
}

func BenchmarkTableBaseRISCV(b *testing.B) {
	benchTable(b, tableCell{mode: codegen.ModeDeadRegister, model: emu.P550})
}

func BenchmarkTableFuncCountX86(b *testing.B) {
	benchTable(b, tableCell{points: "entry", mode: codegen.ModeSpillAlways, model: emu.X86Comparator})
}

func BenchmarkTableFuncCountRISCV(b *testing.B) {
	benchTable(b, tableCell{points: "entry", mode: codegen.ModeDeadRegister, model: emu.P550})
}

func BenchmarkTableBBCountX86(b *testing.B) {
	benchTable(b, tableCell{points: "blocks", mode: codegen.ModeSpillAlways, model: emu.X86Comparator})
}

func BenchmarkTableBBCountRISCV(b *testing.B) {
	benchTable(b, tableCell{points: "blocks", mode: codegen.ModeDeadRegister, model: emu.P550})
}

// ---------------------------------------------------------------------------
// Figure 1: the three instrumentation variants, each counting multiply
// entries; the benchmark measures end-to-end tool time (analysis +
// instrumentation + execution).

func fig1Workload(b *testing.B) *elfrv.File {
	b.Helper()
	if testing.Short() {
		b.Skip("end-to-end variant benchmark: skipped in -short mode")
	}
	file, err := workload.BuildMatmul(12, 2, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return file
}

func BenchmarkFig1StaticRewrite(b *testing.B) {
	file := fig1Workload(b)
	for i := 0; i < b.N; i++ {
		bin, err := core.FromFile(file)
		if err != nil {
			b.Fatal(err)
		}
		fn, _ := bin.FindFunction("multiply")
		m := bin.NewMutator(codegen.ModeDeadRegister)
		v := m.NewVar("c", 8)
		if err := m.AtFuncEntry(fn, snippet.Increment(v)); err != nil {
			b.Fatal(err)
		}
		out, err := m.Rewrite()
		if err != nil {
			b.Fatal(err)
		}
		cpu, err := emu.New(out, emu.P550())
		if err != nil {
			b.Fatal(err)
		}
		if r := cpu.Run(0); r != emu.StopExit {
			b.Fatal(r)
		}
	}
}

func BenchmarkFig1DynamicSpawn(b *testing.B) {
	file := fig1Workload(b)
	for i := 0; i < b.N; i++ {
		bin, err := core.FromFile(file)
		if err != nil {
			b.Fatal(err)
		}
		fn, _ := bin.FindFunction("multiply")
		p, err := bin.Launch(emu.P550())
		if err != nil {
			b.Fatal(err)
		}
		v := p.NewVar("c", 8)
		if _, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
			snippet.Increment(v), codegen.ModeDeadRegister); err != nil {
			b.Fatal(err)
		}
		if ev, err := p.Continue(); err != nil || ev.Kind != proc.EventExit {
			b.Fatalf("ev=%+v err=%v", ev, err)
		}
	}
}

func BenchmarkFig1DynamicAttach(b *testing.B) {
	file := fig1Workload(b)
	for i := 0; i < b.N; i++ {
		bin, err := core.FromFile(file)
		if err != nil {
			b.Fatal(err)
		}
		fn, _ := bin.FindFunction("multiply")
		cpu, err := emu.New(bin.File, emu.P550())
		if err != nil {
			b.Fatal(err)
		}
		cpu.Run(200)
		p := bin.Attach(cpu)
		v := p.NewVar("c", 8)
		if _, err := p.InstrumentFunction(fn, []snippet.Point{snippet.FuncEntry(fn)},
			snippet.Increment(v), codegen.ModeDeadRegister); err != nil {
			b.Fatal(err)
		}
		if ev, err := p.Continue(); err != nil || ev.Kind != proc.EventExit {
			b.Fatalf("ev=%+v err=%v", ev, err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation 1 (DESIGN.md): dead-register allocation vs spill-always,
// isolated to snippet code size and runtime.

func benchAblationRegAlloc(b *testing.B, mode codegen.Mode) {
	if testing.Short() {
		b.Skip("full-run ablation: skipped in -short mode")
	}
	file, err := workload.BuildMatmul(16, 1, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	bin, err := core.FromFile(file)
	if err != nil {
		b.Fatal(err)
	}
	fn, _ := bin.FindFunction("multiply")
	m := bin.NewMutator(mode)
	v := m.NewVar("c", 8)
	if err := m.AtBlockEntries(fn, snippet.Increment(v)); err != nil {
		b.Fatal(err)
	}
	out, err := m.Rewrite()
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cpu, err := emu.New(out, emu.P550())
		if err != nil {
			b.Fatal(err)
		}
		if r := cpu.Run(0); r != emu.StopExit {
			b.Fatal(r)
		}
		cycles = cpu.Cycles
	}
	b.ReportMetric(float64(cycles), "model_cycles/run")
}

func BenchmarkAblationRegisterAllocationDead(b *testing.B) {
	benchAblationRegAlloc(b, codegen.ModeDeadRegister)
}

func BenchmarkAblationRegisterAllocationSpill(b *testing.B) {
	benchAblationRegAlloc(b, codegen.ModeSpillAlways)
}

// ---------------------------------------------------------------------------
// Ablation 2: compressed-aware entry patching vs always-4-byte patching —
// reported as the ladder rung distribution over a population of synthetic
// patch sites at varying distances and room.

func BenchmarkAblationCompressedPatch(b *testing.B) {
	type site struct {
		from, to, room uint64
	}
	var sites []site
	for d := uint64(64); d <= 1<<22; d *= 4 {
		for _, room := range []uint64{2, 4, 8} {
			sites = append(sites, site{0x400000, 0x400000 + d, room})
			sites = append(sites, site{0x400000 + d, 0x400000, room})
		}
	}
	count := map[patch.PatchKind]int{}
	for i := 0; i < b.N; i++ {
		count = map[patch.PatchKind]int{}
		for _, s := range sites {
			kind, _, err := patch.JumpPatch(s.from, s.to, s.room, riscv.RV64GC, riscv.RegT0, true)
			if err != nil {
				continue
			}
			count[kind]++
		}
	}
	b.ReportMetric(float64(count[patch.PatchCJ]), "c.j_patches")
	b.ReportMetric(float64(count[patch.PatchJAL]), "jal_patches")
	b.ReportMetric(float64(count[patch.PatchAuipcJalr]), "auipc_patches")
	b.ReportMetric(float64(count[patch.PatchTrap]), "trap_patches")
}

// ---------------------------------------------------------------------------
// Ablation 3: parallel vs serial CFG parsing ("fast parallel algorithm",
// Section 2.1), on a 200-function random program so the per-round frontier
// has real fan-out.

func benchParse(b *testing.B, workers int) {
	if testing.Short() {
		b.Skip("200-function parse benchmark: skipped in -short mode")
	}
	file, err := asm.Assemble(workload.RandomProgram(7, 200), asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	st, err := symtab.FromFile(file)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parse.Parse(st, parse.Options{Workers: workers}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParallelParseSerial(b *testing.B) { benchParse(b, 1) }
func BenchmarkAblationParallelParse8(b *testing.B)      { benchParse(b, 8) }

// ---------------------------------------------------------------------------
// Pipeline throughput: the full analyze→instrument batch (assemble → parse →
// plan → encode → splice → serialize) over the workload suite plus synthetic
// multi-function programs, at increasing worker counts. The serial/parallel
// ratio is the EXPERIMENTS.md speedup table; output bytes are identical at
// every width (pipeline's golden tests pin that), so the benchmark measures
// pure scheduling, not different work.

func benchPipelineBatch(b *testing.B, workers int) {
	if testing.Short() {
		b.Skip("batch pipeline benchmark: skipped in -short mode")
	}
	jobs := append(pipeline.WorkloadJobs(), pipeline.SyntheticJobs(10, 60, 6)...)
	opts := pipeline.Options{Jobs: workers}
	var emitted int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, stats, err := pipeline.Batch(jobs, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != len(jobs) {
			b.Fatalf("got %d results, want %d", len(results), len(jobs))
		}
		emitted = stats.BytesEmitted.Load()
	}
	b.StopTimer()
	b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "binaries/s")
	b.ReportMetric(float64(emitted), "bytes_emitted")
}

func BenchmarkPipelineBatch1(b *testing.B) { benchPipelineBatch(b, 1) }
func BenchmarkPipelineBatch2(b *testing.B) { benchPipelineBatch(b, 2) }
func BenchmarkPipelineBatch4(b *testing.B) { benchPipelineBatch(b, 4) }
func BenchmarkPipelineBatch8(b *testing.B) { benchPipelineBatch(b, 8) }

// ---------------------------------------------------------------------------
// Substrate microbenchmarks: decoder and emulator throughput.

func BenchmarkDecode32(b *testing.B) {
	w := riscv.MustEncode(riscv.Inst{Mn: riscv.MnADD, Rd: riscv.RegA0,
		Rs1: riscv.RegA1, Rs2: riscv.RegA2, Rs3: riscv.RegNone})
	buf := []byte{byte(w), byte(w >> 8), byte(w >> 16), byte(w >> 24)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := riscv.Decode(buf, 0x1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCompressed(b *testing.B) {
	buf := []byte{0x01, 0x00} // c.nop
	for i := 0; i < b.N; i++ {
		if _, err := riscv.Decode(buf, 0x1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEmulatorThroughput(b *testing.B) {
	if testing.Short() {
		b.Skip("full matmul emulation: skipped in -short mode")
	}
	file, err := workload.BuildMatmul(24, 1, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := emu.New(file, emu.P550())
		if err != nil {
			b.Fatal(err)
		}
		if r := cpu.Run(0); r != emu.StopExit {
			b.Fatal(r)
		}
		insts = cpu.Instret
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "emulated_MIPS")
}

// BenchmarkEmulatorThroughputSlow forces per-instruction dispatch, giving an
// in-tree baseline for the fused-block engine's speedup.
func BenchmarkEmulatorThroughputSlow(b *testing.B) {
	if testing.Short() {
		b.Skip("full matmul emulation: skipped in -short mode")
	}
	file, err := workload.BuildMatmul(24, 1, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu, err := emu.New(file, emu.P550())
		if err != nil {
			b.Fatal(err)
		}
		cpu.SlowDispatch = true
		if r := cpu.Run(0); r != emu.StopExit {
			b.Fatal(r)
		}
		insts = cpu.Instret
	}
	b.StopTimer()
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "emulated_MIPS")
}

// BenchmarkEmulatorObsOverhead guards the observability layer's nil-sink
// fast path: with metrics disabled (the default), throughput must stay
// within noise of BenchmarkEmulatorThroughput — the hot loop checks one
// pointer and touches no atomics. The enabled sub-benchmark quantifies the
// cost of live counters for EXPERIMENTS.md.
func BenchmarkEmulatorObsOverhead(b *testing.B) {
	if testing.Short() {
		b.Skip("full matmul emulation: skipped in -short mode")
	}
	file, err := workload.BuildMatmul(24, 1, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, metrics func() *emu.Metrics) {
		var insts uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cpu, err := emu.New(file, emu.P550())
			if err != nil {
				b.Fatal(err)
			}
			cpu.Obs = metrics()
			if r := cpu.Run(0); r != emu.StopExit {
				b.Fatal(r)
			}
			insts = cpu.Instret
		}
		b.StopTimer()
		b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "emulated_MIPS")
	}
	b.Run("disabled", func(b *testing.B) {
		run(b, func() *emu.Metrics { return nil })
	})
	b.Run("enabled", func(b *testing.B) {
		run(b, func() *emu.Metrics { return emu.NewMetrics(obs.NewRegistry()) })
	})
}

// BenchmarkEmulatorSampleOverhead guards the sampling trigger's fast path:
// with no sampler configured (the default), the dispatch loop adds one
// predictable branch, so throughput must stay within noise of
// BenchmarkEmulatorThroughput. The enabled sub-benchmarks quantify live
// sampling at several periods for EXPERIMENTS.md — the cost there is the
// per-mark trigger plus the fast path declining superblocks near a mark.
func BenchmarkEmulatorSampleOverhead(b *testing.B) {
	if testing.Short() {
		b.Skip("full matmul emulation: skipped in -short mode")
	}
	file, err := workload.BuildMatmul(24, 1, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, period uint64) {
		var insts, samples uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cpu, err := emu.New(file, emu.P550())
			if err != nil {
				b.Fatal(err)
			}
			if period != 0 {
				samples = 0
				cpu.SetSampler(period, func(c *emu.CPU) bool {
					samples++
					return true
				})
			}
			if r := cpu.Run(0); r != emu.StopExit {
				b.Fatal(r)
			}
			insts = cpu.Instret
		}
		b.StopTimer()
		b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "emulated_MIPS")
		if period != 0 {
			b.ReportMetric(float64(samples), "samples/run")
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, 0) })
	b.Run("period=100000", func(b *testing.B) { run(b, 100000) })
	b.Run("period=10000", func(b *testing.B) { run(b, 10000) })
	b.Run("period=1000", func(b *testing.B) { run(b, 1000) })
}

func BenchmarkSnippetGeneration(b *testing.B) {
	v := &snippet.Var{Name: "v", Width: 8, Addr: 0x200000}
	sn := snippet.Increment(v)
	for i := 0; i < b.N; i++ {
		if _, err := codegen.Generate(sn, codegen.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveness(b *testing.B) {
	file, err := workload.BuildMatmul(8, 1, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	bin, err := core.FromFile(file)
	if err != nil {
		b.Fatal(err)
	}
	fn, _ := bin.FindFunction("multiply")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bin.Liveness(fn)
	}
}
