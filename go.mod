module rvdyn

go 1.22
